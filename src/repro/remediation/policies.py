"""Remediation policies: alert lifecycle transitions → action requests.

A :class:`Policy` watches one alert rule and translates its lifecycle
transitions into :class:`ActionRequest`\\ s.  Policies are pure deciders:
they never touch the deployment (the engine executes, the guardrails
admit), which is what makes dry-run mode byte-for-byte faithful.

The switch a policy targets is read from the alert's labels (the
``label`` parameter, default ``"switch"``) — Scarecrow rules over
per-switch series like ``farm_ft_heartbeats_total{switch=...}`` carry
it naturally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.alerts import AlertEvent

#: Alert lifecycle states policies react to.
FIRING = "firing"
RESOLVED = "resolved"


@dataclass(frozen=True)
class ActionRequest:
    """One action a policy wants executed."""

    action: str            # drain / restore / resolve / quarantine / ...
    switch: Optional[int]
    policy: str
    rule: str
    labels: Tuple[Tuple[str, str], ...]
    alert_state: str
    alert_t: float


def _switch_from(event: AlertEvent, label: str) -> Optional[int]:
    for key, value in event.labels:
        if key == label:
            try:
                return int(value)
            except ValueError:
                return None
    return None


class Policy:
    """Base: subscribe to one rule, emit action requests."""

    def __init__(self, rule: str, label: str = "switch") -> None:
        self.rule = rule
        self.label = label

    def _request(self, event: AlertEvent, action: str,
                 switch: Optional[int]) -> ActionRequest:
        return ActionRequest(
            action=action, switch=switch,
            policy=type(self).__name__, rule=event.rule,
            labels=tuple(event.labels), alert_state=event.state,
            alert_t=event.t)

    def actions_for(self, event: AlertEvent) -> List[ActionRequest]:
        raise NotImplementedError


class DrainPolicy(Policy):
    """FIRING → drain the labeled switch; RESOLVED → restore it.

    Drain cordons the switch and runs a scoped reoptimize so its seeds
    migrate to survivors — the switch keeps running (graceful), it just
    stops being a placement target.
    """

    def __init__(self, rule: str, label: str = "switch",
                 restore_on_resolve: bool = True) -> None:
        super().__init__(rule, label)
        self.restore_on_resolve = restore_on_resolve

    def actions_for(self, event: AlertEvent) -> List[ActionRequest]:
        if event.rule != self.rule:
            return []
        switch = _switch_from(event, self.label)
        if switch is None:
            return []
        if event.state == FIRING:
            return [self._request(event, "drain", switch)]
        if event.state == RESOLVED and self.restore_on_resolve:
            return [self._request(event, "restore", switch)]
        return []


class QuarantinePolicy(Policy):
    """FIRING → quarantine (park) the labeled switch; RESOLVED → restore.

    Harder than drain: the fault-tolerance manager stops listening to
    the switch's heartbeats and its seeds are displaced with checkpoint
    restore — for switches whose telemetry itself is untrustworthy.
    """

    def __init__(self, rule: str, label: str = "switch",
                 restore_on_resolve: bool = False) -> None:
        super().__init__(rule, label)
        self.restore_on_resolve = restore_on_resolve

    def actions_for(self, event: AlertEvent) -> List[ActionRequest]:
        if event.rule != self.rule:
            return []
        switch = _switch_from(event, self.label)
        if switch is None:
            return []
        if event.state == FIRING:
            return [self._request(event, "quarantine", switch)]
        if event.state == RESOLVED and self.restore_on_resolve:
            return [self._request(event, "restore", switch)]
        return []


class TargetedResolvePolicy(Policy):
    """FIRING → incremental re-placement scoped to the labeled switch.

    The gentlest response: no capacity is removed; the optimizer simply
    revisits the impacted switch's seeds (everyone else is pinned) in
    case the degradation changed what the best local layout is.
    """

    def actions_for(self, event: AlertEvent) -> List[ActionRequest]:
        if event.rule != self.rule or event.state != FIRING:
            return []
        switch = _switch_from(event, self.label)
        if switch is None:
            return []
        return [self._request(event, "resolve", switch)]


@dataclass
class _BreachWindow:
    times: Deque[float] = field(default_factory=deque)


class EscalatePolicy(Policy):
    """Repeated FIRING transitions → promote to a forced failover.

    One transient breach never escalates: the policy counts *distinct*
    FIRING transitions per switch and only acts when ``breaches`` of
    them land inside ``window_s`` — the signature of a gray switch whose
    alert keeps re-firing because heartbeats trickle through and the
    two-stage detector can never confirm the failure on its own.
    """

    def __init__(self, rule: str, label: str = "switch",
                 breaches: int = 3, window_s: float = 30.0) -> None:
        super().__init__(rule, label)
        if breaches < 2:
            raise ValueError("escalation needs at least 2 breaches; "
                             "use QuarantinePolicy for act-on-first")
        self.breaches = breaches
        self.window_s = window_s
        self._windows: Dict[int, _BreachWindow] = {}

    def actions_for(self, event: AlertEvent) -> List[ActionRequest]:
        if event.rule != self.rule or event.state != FIRING:
            return []
        switch = _switch_from(event, self.label)
        if switch is None:
            return []
        window = self._windows.setdefault(switch, _BreachWindow())
        window.times.append(event.t)
        cutoff = event.t - self.window_s
        while window.times and window.times[0] < cutoff:
            window.times.popleft()
        if len(window.times) < self.breaches:
            return []
        window.times.clear()  # one escalation per accumulated window
        return [self._request(event, "escalate", switch)]
