"""Discrete-event simulation kernel for the FARM reproduction."""

from repro.sim.engine import (
    MICROS,
    MILLIS,
    Event,
    PeriodicTimer,
    Simulator,
)
from repro.sim.process import Process, Signal, Sleep, WaitFor, spawn
from repro.sim.resources import CapacityMeter, TokenPool, UtilizationSample

__all__ = [
    "MICROS",
    "MILLIS",
    "Event",
    "PeriodicTimer",
    "Simulator",
    "Process",
    "Signal",
    "Sleep",
    "WaitFor",
    "spawn",
    "CapacityMeter",
    "TokenPool",
    "UtilizationSample",
]
