"""Generator-based cooperative processes on top of the event kernel.

A :class:`Process` wraps a Python generator that yields *commands*:

* ``yield Sleep(dt)``       — resume after ``dt`` seconds.
* ``yield WaitFor(signal)`` — resume when the :class:`Signal` fires; the
  value passed to :meth:`Signal.fire` becomes the ``yield`` expression value.

This is deliberately a small subset of SimPy: FARM components are mostly
callback-driven (timers, message handlers), but traffic generators and a few
integration tests read much more naturally as processes.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class Sleep:
    """Yielded by a process to suspend for ``duration`` seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise SimulationError(f"cannot sleep a negative duration: {duration}")
        self.duration = duration


class Signal:
    """A one-to-many wake-up notification.

    Processes wait on a signal with ``yield WaitFor(signal)``; plain callbacks
    subscribe with :meth:`subscribe`.  Firing delivers a single value to every
    waiter registered at fire time and resets the waiter list.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_value: Any = None

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)`` for the next firing only."""
        self._waiters.append(callback)

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class WaitFor:
    """Yielded by a process to suspend until ``signal`` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal) -> None:
        self.signal = signal


class Process:
    """Drives a generator through the simulator.

    The process is *finished* when the generator returns or raises
    ``StopIteration``; the return value is stored in :attr:`result`.
    Exceptions raised inside the generator propagate out of the simulator's
    ``run()`` — silent failure would hide bugs in workload scripts.
    """

    def __init__(self, sim: Simulator,
                 generator: Generator[Any, Any, Any],
                 name: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.name = name or repr(generator)
        self.finished = False
        self.result: Any = None
        self.done = Signal(f"{self.name}.done")
        sim.schedule(0.0, self._advance, None, label=f"start {self.name}")

    def _advance(self, sent_value: Any) -> None:
        if self.finished:
            return
        try:
            command = self.generator.send(sent_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done.fire(stop.value)
            return
        if isinstance(command, Sleep):
            self.sim.schedule(command.duration, self._advance, None,
                              label=f"wake {self.name}")
        elif isinstance(command, WaitFor):
            command.signal.subscribe(self._advance)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command "
                f"{command!r}; expected Sleep or WaitFor")


def spawn(sim: Simulator, generator: Generator[Any, Any, Any],
          name: str = "") -> Process:
    """Start ``generator`` as a process on ``sim``."""
    return Process(sim, generator, name=name)


def run_process(generator_fn: Callable[[Simulator], Generator[Any, Any, Any]],
                until: Optional[float] = None) -> Any:
    """Convenience: run a single process on a fresh simulator, return result."""
    sim = Simulator()
    proc = spawn(sim, generator_fn(sim), name=getattr(generator_fn, "__name__", "proc"))
    sim.run(until=until)
    return proc.result
