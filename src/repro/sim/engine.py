"""Discrete-event simulation kernel.

The entire FARM reproduction runs on this kernel: the switch emulator, the
seed/soil/harvester runtime, and every baseline system schedule their work as
events on a shared :class:`Simulator`.

Design notes
------------
* Time is a ``float`` in **seconds**.  Evaluation figures quote milliseconds;
  helpers :data:`MILLIS` and :data:`MICROS` keep call sites readable.
* Events fire in ``(time, priority, sequence)`` order, so two events scheduled
  for the same instant fire in scheduling order unless priorities differ.
  This determinism is load-bearing: tests assert exact orderings.
* Heap entries are plain ``(time, priority, seq, event)`` tuples: the unique
  ``seq`` guarantees comparisons never reach the event object, and tuple
  comparison in C is far cheaper than a dataclass ``__lt__`` in the
  innermost loop.
* Cancellation is O(1) (a tombstone flag); the heap lazily discards dead
  entries on pop and compacts itself when tombstones dominate, so long
  chaos runs with heavy cancellation don't grow the heap unboundedly.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Iterator, Optional

from repro.errors import SimulationError

#: One millisecond, in simulator time units (seconds).
MILLIS = 1e-3
#: One microsecond, in simulator time units (seconds).
MICROS = 1e-6

#: Default priority for scheduled events; lower fires first at equal times.
NORMAL_PRIORITY = 0

#: Tombstone compaction: compact once dead entries exceed an adaptive
#: floor *and* outnumber live entries.  The floor starts at
#: :data:`_COMPACT_MIN_DEAD` and adapts to the live/dead ratio observed at
#: each compaction: a small, cancel-heavy heap doubles its floor so the
#: fixed compaction overhead (list rebuild + heapify) amortizes across
#: more cancels, while a large heap pulls the floor back toward its live
#: size so the dead:live trigger ratio stays ~1 (amortized O(1) per
#: cancel).  :data:`_COMPACT_MAX_DEAD` bounds both the memory held by
#: tombstones and the log-factor they add to heap pushes.
_COMPACT_MIN_DEAD = 64
_COMPACT_MAX_DEAD = 1024


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule`; hold onto it to :meth:`cancel`.

    ``cost_key`` is an optional ``(component, switch_id, seed_id, label)``
    tuple the profiler charges this event's wall-clock to (see
    :mod:`repro.obs.profiler`).  Schedulers pass a precomputed shared
    tuple, so carrying it costs one slot, not an allocation per event.
    """

    __slots__ = ("callback", "args", "cancelled", "fired", "label",
                 "cost_key", "_sim")

    def __init__(self, callback: Callable[..., None], args: tuple,
                 label: str = "",
                 cost_key: Optional[tuple] = None) -> None:
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label
        self.cost_key = cost_key
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; no-op if fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    @property
    def alive(self) -> bool:
        """True while the event is still pending."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "cancelled" if self.cancelled else "pending"
        return f"<Event {self.label or self.callback!r} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, lambda: out.append(sim.now))
    >>> sim.run()
    >>> out
    [1.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple] = []  # (time, priority, seq, Event)
        self._seq = itertools.count()
        self._running = False
        self._event_count = 0
        self._live = 0  # live (schedulable) entries in the heap
        self._dead = 0  # cancelled entries not yet popped/compacted
        self._compact_floor = _COMPACT_MIN_DEAD
        #: Number of tombstone compactions performed (diagnostic).
        self.compactions = 0
        # Optional kernel trace hook: ``hook(when, label)`` called for
        # every fired event.  Kept as a plain attribute so the disabled
        # cost in step() is one load + branch (the hot loop budget).
        self._trace_hook: Optional[Callable[[float, str], None]] = None
        # Optional profiler: when set, step() routes every callback
        # through ``profiler.dispatch(event)`` so wall-clock can be
        # attributed to the event's cost key.  Same disabled budget as
        # the trace hook: one load + branch.
        self._profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (diagnostic)."""
        return self._event_count

    def pending(self) -> int:
        """Number of live events still in the queue.  O(1): the count is
        maintained on schedule/cancel/fire instead of scanning the heap."""
        return self._live

    def set_trace_hook(
            self, hook: Optional[Callable[[float, str], None]]) -> None:
        """Install (or clear, with None) the kernel trace hook.

        ``hook(when, label)`` runs right before each event's callback.
        :meth:`repro.obs.Observability.trace_kernel` uses this to put
        every fired event on the trace timeline; it is opt-in because the
        volume is proportional to the whole run.
        """
        self._trace_hook = hook

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Install (or clear, with None) the dispatch profiler.

        ``profiler.dispatch(event)`` replaces the plain
        ``event.callback(*event.args)`` call in :meth:`step` while
        installed; :class:`repro.obs.profiler.Profiler` uses this to time
        callbacks and charge them to their cost keys.  The profiler must
        invoke the callback exactly once — it wraps dispatch, it does not
        observe it — so sim-time semantics are unchanged.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any,
                 priority: int = NORMAL_PRIORITY, label: str = "",
                 cost_key: Optional[tuple] = None) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        ``delay`` must be non-negative and finite; scheduling into the past
        raises :class:`SimulationError`.
        """
        if delay < 0 or math.isnan(delay) or math.isinf(delay):
            raise SimulationError(f"invalid event delay: {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args,
                                priority=priority, label=label,
                                cost_key=cost_key)

    def schedule_at(self, when: float, callback: Callable[..., None],
                    *args: Any, priority: int = NORMAL_PRIORITY,
                    label: str = "",
                    cost_key: Optional[tuple] = None) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}: simulation time is {self._now}")
        event = Event(callback, args, label=label, cost_key=cost_key)
        event._sim = self
        heapq.heappush(self._heap, (when, priority, next(self._seq), event))
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        """Bookkeeping for Event.cancel(): update the live count and compact
        the heap when tombstones dominate it (adaptive floor, see above)."""
        self._live -= 1
        self._dead += 1
        if self._dead >= self._compact_floor and self._dead >= self._live:
            self._compact()

    def _compact(self) -> None:
        self._heap = [entry for entry in self._heap
                      if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0
        self.compactions += 1
        # Adapt to the live/dead ratio just observed: when the live set is
        # smaller than the floor the heap is cancel-dominated, so double
        # the floor (up to the cap); otherwise track the live size so the
        # next compaction again waits for tombstones to rival it.
        if self._live < self._compact_floor:
            self._compact_floor = min(self._compact_floor * 2,
                                      _COMPACT_MAX_DEAD)
        else:
            self._compact_floor = max(
                _COMPACT_MIN_DEAD, min(self._live, _COMPACT_MAX_DEAD))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            when, _priority, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                self._dead -= 1
                continue
            self._now = when
            event.fired = True
            self._live -= 1
            self._event_count += 1
            hook = self._trace_hook
            if hook is not None:
                hook(when, event.label)
            profiler = self._profiler
            if profiler is None:
                event.callback(*event.args)
            else:
                profiler.dispatch(event)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time at which execution stopped.  When
        stopping on ``until``, time is advanced to exactly ``until`` (events
        scheduled at later times remain queued).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                entry = self._heap[0]
                if entry[3].cancelled:
                    heapq.heappop(self._heap)
                    self._dead -= 1
                    continue
                if until is not None and entry[0] > until:
                    break
                if not self.step():
                    break
                fired += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def every(self, interval: float, callback: Callable[..., None], *args: Any,
              start_after: Optional[float] = None, label: str = "",
              priority: int = NORMAL_PRIORITY,
              cost_key: Optional[tuple] = None) -> "PeriodicTimer":
        """Create a periodic timer firing ``callback`` every ``interval``.

        The first firing happens after ``start_after`` (defaults to one
        interval).  The returned timer supports :meth:`PeriodicTimer.stop` and
        dynamic :meth:`PeriodicTimer.reschedule`.  ``priority`` orders the
        timer against other events at the same instant — observers (e.g. the
        Scarecrow scraper) use a high value so they fire after the state
        they observe has settled.
        """
        timer = PeriodicTimer(self, interval, callback, args, label=label,
                              priority=priority, cost_key=cost_key)
        timer.start(start_after)
        return timer


class PeriodicTimer:
    """Repeatedly fires a callback at a (dynamically adjustable) interval.

    Seeds use this for ``poll``/``time`` trigger variables, whose periods can
    be reassigned at runtime (SIII-A-d: "assignments ... to trigger variables
    (e.g., to modify polling rates)").
    """

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[..., None], args: tuple = (),
                 label: str = "",
                 priority: int = NORMAL_PRIORITY,
                 cost_key: Optional[tuple] = None) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive: {interval}")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.label = label
        self.priority = priority
        self.cost_key = cost_key
        self._event: Optional[Event] = None
        self._stopped = True
        self.fire_count = 0

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self, start_after: Optional[float] = None) -> None:
        """Arm the timer; first firing after ``start_after`` (default: interval)."""
        self._stopped = False
        delay = self.interval if start_after is None else start_after
        self._event = self.sim.schedule(delay, self._fire, label=self.label,
                                        priority=self.priority,
                                        cost_key=self.cost_key)

    def stop(self) -> None:
        """Disarm the timer.  Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def reschedule(self, interval: float) -> None:
        """Change the period.  Takes effect for the *next* firing."""
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive: {interval}")
        self.interval = interval
        if not self._stopped:
            if self._event is not None:
                self._event.cancel()
            self._event = self.sim.schedule(interval, self._fire, label=self.label,
                                            priority=self.priority,
                                            cost_key=self.cost_key)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        # Schedule the next firing before running the callback so the callback
        # may call reschedule()/stop() and win.
        self._event = self.sim.schedule(self.interval, self._fire, label=self.label,
                                        priority=self.priority,
                                        cost_key=self.cost_key)
        self.callback(*self.args)


def exponential_backoff(base: float, attempt: int, cap: float) -> float:
    """Deterministic capped exponential backoff used by retry loops."""
    return min(cap, base * (2 ** attempt))


def jittered_backoff(base: float, attempt: int, cap: float,
                     rng: Optional[Any] = None,
                     jitter_frac: float = 0.0) -> float:
    """:func:`exponential_backoff` with multiplicative jitter.

    ``rng`` is any object with a ``random()`` method (e.g. a seeded
    ``random.Random``); the kernel itself stays RNG-free — callers that
    want jitter must bring their own deterministic source.  The jitter is
    additive-only (``delay * [1, 1 + jitter_frac)``) so the backoff never
    undershoots its deterministic floor.
    """
    delay = exponential_backoff(base, attempt, cap)
    if rng is not None and jitter_frac > 0.0:
        delay *= 1.0 + jitter_frac * rng.random()
    return delay


def iter_times(start: float, interval: float, end: float) -> Iterator[float]:
    """Yield ``start, start+interval, ...`` up to and including ``end``.

    Each tick is computed as ``start + i*interval`` rather than by repeated
    addition: accumulating ``t += interval`` loses ulps on every step, and
    over long runs the drift can skip or duplicate the final tick.
    """
    if interval <= 0:
        raise SimulationError("interval must be positive")
    i = 0
    while True:
        t = start + i * interval
        if t > end + 1e-12:
            return
        yield t
        i += 1
