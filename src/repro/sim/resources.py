"""Capacity-accounting primitives shared by the switch emulator.

Two abstractions cover every hardware resource in the paper's evaluation:

* :class:`CapacityMeter` — a *rate* resource (PCIe polling bandwidth, CPU
  cycles): usage is integrated over time and reported as utilization.
* :class:`TokenPool` — a *space* resource (TCAM entries, RAM megabytes):
  discrete allocate/release with hard capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator


@dataclass
class UtilizationSample:
    """A point-in-time utilization observation."""

    time: float
    used: float
    capacity: float

    @property
    def fraction(self) -> float:
        return self.used / self.capacity if self.capacity else 0.0


class CapacityMeter:
    """Tracks instantaneous demand against a fixed rate capacity.

    Demand is a sum of registered *flows* (e.g. each seed's polling rate in
    bytes/s).  Demand beyond capacity is allowed to be *requested* but the
    meter reports saturation — the paper's Fig. 8 shows exactly this: polling
    demand rises past the 8 Mbps PCIe ceiling while the ASIC is unfazed.
    """

    def __init__(self, sim: Simulator, capacity: float, name: str = "") -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._demand = 0.0
        self._history: list[UtilizationSample] = []
        self._last_change = sim.now
        self._busy_integral = 0.0  # integral of min(demand, capacity) dt
        self._demand_integral = 0.0  # integral of raw demand dt

    # -- demand management ------------------------------------------------
    @property
    def demand(self) -> float:
        """Current requested rate (may exceed capacity)."""
        return self._demand

    @property
    def effective_throughput(self) -> float:
        """Current granted rate: demand clipped to capacity."""
        return min(self._demand, self.capacity)

    @property
    def saturated(self) -> bool:
        return self._demand > self.capacity

    @property
    def utilization(self) -> float:
        """Granted rate over capacity, in [0, 1]."""
        return self.effective_throughput / self.capacity

    @property
    def oversubscription(self) -> float:
        """Demand over capacity; > 1 means the resource is congested."""
        return self._demand / self.capacity

    def add_demand(self, rate: float) -> None:
        """Register ``rate`` additional units/s of demand."""
        if rate < 0:
            raise SimulationError(f"demand rate must be non-negative: {rate}")
        self._accumulate()
        self._demand += rate
        self._record()

    def remove_demand(self, rate: float) -> None:
        """Withdraw previously-registered demand."""
        self._accumulate()
        self._demand -= rate
        if self._demand < -1e-9:
            raise SimulationError(
                f"{self.name or 'meter'}: demand went negative ({self._demand})")
        self._demand = max(self._demand, 0.0)
        self._record()

    # -- time accounting ---------------------------------------------------
    def _accumulate(self) -> None:
        dt = self.sim.now - self._last_change
        if dt > 0:
            self._busy_integral += self.effective_throughput * dt
            self._demand_integral += self._demand * dt
        self._last_change = self.sim.now

    def _record(self) -> None:
        self._history.append(
            UtilizationSample(self.sim.now, self._demand, self.capacity))

    def mean_utilization(self, up_to: Optional[float] = None) -> float:
        """Time-averaged granted utilization since construction."""
        self._accumulate()
        horizon = (up_to if up_to is not None else self.sim.now)
        if horizon <= 0:
            return 0.0
        return self._busy_integral / (self.capacity * horizon)

    def mean_demand(self) -> float:
        """Time-averaged raw demand (units/s)."""
        self._accumulate()
        if self.sim.now <= 0:
            return 0.0
        return self._demand_integral / self.sim.now

    def history(self) -> list[UtilizationSample]:
        return list(self._history)


class TokenPool:
    """A discrete resource pool with hard capacity (TCAM slots, RAM MB)."""

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 0:
            raise SimulationError(f"capacity must be non-negative: {capacity}")
        self.capacity = capacity
        self.name = name
        self._used = 0
        self.peak = 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def available(self) -> int:
        return self.capacity - self._used

    def try_acquire(self, amount: int = 1) -> bool:
        """Acquire ``amount`` tokens if available; returns success."""
        if amount < 0:
            raise SimulationError(f"amount must be non-negative: {amount}")
        if self._used + amount > self.capacity:
            return False
        self._used += amount
        self.peak = max(self.peak, self._used)
        return True

    def acquire(self, amount: int = 1) -> None:
        """Acquire or raise :class:`SimulationError` on exhaustion."""
        if not self.try_acquire(amount):
            raise SimulationError(
                f"{self.name or 'pool'} exhausted: need {amount}, "
                f"have {self.available} of {self.capacity}")

    def release(self, amount: int = 1) -> None:
        if amount < 0:
            raise SimulationError(f"amount must be non-negative: {amount}")
        if amount > self._used:
            raise SimulationError(
                f"{self.name or 'pool'}: releasing {amount} but only "
                f"{self._used} in use")
        self._used -= amount

    def resize(self, new_capacity: int) -> None:
        """Grow or shrink capacity; shrinking below usage is rejected."""
        if new_capacity < self._used:
            raise SimulationError(
                f"{self.name or 'pool'}: cannot shrink to {new_capacity}, "
                f"{self._used} tokens in use")
        self.capacity = new_capacity
