"""Network topology model and the spine-leaf builder used by the evaluation.

Switches and hosts are nodes of an undirected :mod:`networkx` graph.  Only
switches can host seeds; hosts anchor IP addresses so that the SDN
controller can resolve filter expressions to paths (``phi_path``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.net.addresses import Prefix, format_ip, parse_ip

SPINE = "spine"
LEAF = "leaf"
HOST = "host"


@dataclass
class NodeSpec:
    """Static description of a topology node."""

    node_id: int
    kind: str  # SPINE | LEAF | HOST
    name: str
    ip: Optional[int] = None  # hosts only
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def is_switch(self) -> bool:
        return self.kind in (SPINE, LEAF)


class Topology:
    """A data center network topology.

    Node ids are dense ints assigned at insertion.  Links carry bandwidth
    (bytes/s) and latency (seconds) attributes used by the baselines'
    collection-path modeling.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.graph = nx.Graph()
        self._nodes: Dict[int, NodeSpec] = {}
        self._next_id = itertools.count(1)
        self._ip_index: Dict[int, int] = {}  # ip -> host node id

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, kind: str = LEAF, name: str = "",
                   **attrs: object) -> int:
        """Add a switch node; returns its id."""
        if kind not in (SPINE, LEAF):
            raise TopologyError(f"not a switch kind: {kind!r}")
        node_id = next(self._next_id)
        spec = NodeSpec(node_id, kind, name or f"{kind}{node_id}", attrs=attrs)
        self._nodes[node_id] = spec
        self.graph.add_node(node_id, spec=spec)
        return node_id

    def add_host(self, ip: str, name: str = "", **attrs: object) -> int:
        """Add a host with the given IPv4 address; returns its id."""
        ip_value = parse_ip(ip)
        if ip_value in self._ip_index:
            raise TopologyError(f"duplicate host IP {ip}")
        node_id = next(self._next_id)
        spec = NodeSpec(node_id, HOST, name or f"host{node_id}",
                        ip=ip_value, attrs=attrs)
        self._nodes[node_id] = spec
        self.graph.add_node(node_id, spec=spec)
        self._ip_index[ip_value] = node_id
        return node_id

    def add_link(self, u: int, v: int, bandwidth_bps: float = 1.25e10,
                 latency_s: float = 5e-6) -> None:
        """Connect two nodes (default: 100 Gbps, 5 us)."""
        for node in (u, v):
            if node not in self._nodes:
                raise TopologyError(f"unknown node {node}")
        self.graph.add_edge(u, v, bandwidth=bandwidth_bps, latency=latency_s)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> NodeSpec:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    @property
    def switch_ids(self) -> List[int]:
        return [n for n, spec in self._nodes.items() if spec.is_switch]

    @property
    def leaf_ids(self) -> List[int]:
        return [n for n, spec in self._nodes.items() if spec.kind == LEAF]

    @property
    def spine_ids(self) -> List[int]:
        return [n for n, spec in self._nodes.items() if spec.kind == SPINE]

    @property
    def host_ids(self) -> List[int]:
        return [n for n, spec in self._nodes.items() if spec.kind == HOST]

    def host_by_ip(self, ip: int) -> Optional[int]:
        return self._ip_index.get(ip)

    def hosts_in_prefix(self, prefix: Prefix) -> List[int]:
        """Host node ids whose address lies inside ``prefix``."""
        return [node_id for ip, node_id in sorted(self._ip_index.items())
                if prefix.contains(ip)]

    def neighbors(self, node_id: int) -> List[int]:
        return sorted(self.graph.neighbors(node_id))

    def degree(self, node_id: int) -> int:
        return self.graph.degree(node_id)

    def link_latency(self, u: int, v: int) -> float:
        try:
            return self.graph.edges[u, v]["latency"]
        except KeyError:
            raise TopologyError(f"no link {u}-{v}") from None

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def switch_paths(self, src_host: int, dst_host: int,
                     limit: int = 16) -> List[Tuple[int, ...]]:
        """All shortest paths between two hosts, as switch-id tuples.

        Host endpoints are stripped: paths contain only switches, matching
        the paper's path examples (SIII-B-a) where placement ranges are
        measured in switch hops.
        """
        for node in (src_host, dst_host):
            if self.node(node).kind != HOST:
                raise TopologyError(f"node {node} is not a host")
        if src_host == dst_host:
            return []
        try:
            raw_paths = nx.all_shortest_paths(self.graph, src_host, dst_host)
            paths = []
            for path in itertools.islice(raw_paths, limit):
                switches = tuple(n for n in path if self._nodes[n].is_switch)
                if switches:
                    paths.append(switches)
            return sorted(set(paths))
        except nx.NetworkXNoPath:
            return []

    def path_latency(self, path: Iterable[int]) -> float:
        """Sum of link latencies along a node path."""
        nodes = list(path)
        return sum(self.link_latency(u, v) for u, v in zip(nodes, nodes[1:]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Topology {self.name!r}: {len(self.switch_ids)} switches, "
                f"{len(self.host_ids)} hosts>")


def spine_leaf(num_spines: int = 2, num_leaves: int = 4,
               hosts_per_leaf: int = 4,
               leaf_prefix_template: str = "10.{leaf}.1.0/24",
               link_bandwidth_bps: float = 1.25e10,
               link_latency_s: float = 5e-6) -> Topology:
    """Build a spine-leaf (2-tier Clos) topology like the SAP deployment.

    Every leaf connects to every spine; ``hosts_per_leaf`` hosts hang off
    each leaf with addresses drawn from the leaf's /24.

    >>> topo = spine_leaf(2, 3, 2)
    >>> len(topo.spine_ids), len(topo.leaf_ids), len(topo.host_ids)
    (2, 3, 6)
    """
    if num_spines < 1 or num_leaves < 1 or hosts_per_leaf < 0:
        raise TopologyError("spine/leaf/host counts must be positive")
    if hosts_per_leaf > 250:
        raise TopologyError("at most 250 hosts per leaf /24")
    topo = Topology(name=f"spine-leaf-{num_spines}x{num_leaves}")
    spines = [topo.add_switch(SPINE, f"spine{i + 1}")
              for i in range(num_spines)]
    for leaf_index in range(num_leaves):
        leaf = topo.add_switch(LEAF, f"leaf{leaf_index + 1}")
        for spine in spines:
            topo.add_link(spine, leaf, link_bandwidth_bps, link_latency_s)
        prefix = Prefix.parse(
            leaf_prefix_template.format(leaf=leaf_index + 1))
        for host_index in range(hosts_per_leaf):
            ip = format_ip(prefix.network + host_index + 1)
            host = topo.add_host(ip, f"h{leaf_index + 1}-{host_index + 1}")
            topo.add_link(leaf, host, link_bandwidth_bps, link_latency_s)
    return topo


def linear_topology(num_switches: int, hosts_at_ends: bool = True) -> Topology:
    """A chain of switches, optionally with one host at each end.

    Used by tests exercising path-range placement directives, where the
    switch path between the end hosts is the full chain.
    """
    if num_switches < 1:
        raise TopologyError("need at least one switch")
    topo = Topology(name=f"chain-{num_switches}")
    switches = [topo.add_switch(LEAF, f"s{i + 1}") for i in range(num_switches)]
    for u, v in zip(switches, switches[1:]):
        topo.add_link(u, v)
    if hosts_at_ends:
        left = topo.add_host("10.1.1.4", "sender")
        right = topo.add_host("10.0.1.1", "receiver")
        topo.add_link(left, switches[0])
        topo.add_link(right, switches[-1])
    return topo
