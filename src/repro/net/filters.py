"""Packet/traffic filter algebra.

Filters are the ``fil`` atoms of Almanac's grammar (Fig. 3).  They serve
three masters, so they are immutable, hashable, and canonicalizable:

1. **Evaluation** — does a packet (or a flow key) match?  Used by the TCAM,
   packet probing, and seed event dispatch.
2. **Polling-subject encoding** (``phi_enc``, SIII-B-c) — which concrete
   statistics does polling with this filter read?  The soil uses this to
   aggregate polling across seeds; the seeder uses it to compute aggregation
   benefits for placement.
3. **Path queries** (``phi_path``) — the SDN controller resolves IP
   constraints in a filter to the set of paths carrying matching traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple, Union

from repro.errors import FarmError
from repro.net.addresses import Prefix
from repro.net.packet import FlowKey, Packet

#: Sentinel for "all switch ports" in a :class:`SwitchPortFilter`.
ANY_PORT = -1


class Filter:
    """Base class.  Subclasses are frozen dataclasses."""

    def matches(self, packet: Packet) -> bool:
        """True if the packet satisfies the filter."""
        return self.matches_key(packet.key, tcp_flags=packet.tcp_flags)

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        raise NotImplementedError

    # -- algebra -----------------------------------------------------------
    def __and__(self, other: "Filter") -> "Filter":
        return and_(self, other)

    def __or__(self, other: "Filter") -> "Filter":
        return or_(self, other)

    def __invert__(self) -> "Filter":
        return NotFilter(self)

    # -- introspection -------------------------------------------------------
    def atoms(self) -> Iterable["Filter"]:
        """Yield the atomic filters appearing in this expression."""
        yield self

    def src_prefixes(self) -> FrozenSet[Prefix]:
        """Source-IP prefixes constrained anywhere in the expression."""
        return frozenset(atom.prefix for atom in self.atoms()
                         if isinstance(atom, SrcIpFilter))

    def dst_prefixes(self) -> FrozenSet[Prefix]:
        """Destination-IP prefixes constrained anywhere in the expression."""
        return frozenset(atom.prefix for atom in self.atoms()
                         if isinstance(atom, DstIpFilter))

    def switch_ports(self) -> Optional[FrozenSet[int]]:
        """Switch ports referenced, or None if none are (pure packet filter).

        ``ANY_PORT`` membership means "all ports of the switch".
        """
        ports = [atom.port for atom in self.atoms()
                 if isinstance(atom, SwitchPortFilter)]
        return frozenset(ports) if ports else None

    def canonical(self) -> str:
        """A canonical string; equal strings imply equivalent filters.

        (The converse does not hold — this is a syntactic canonical form,
        sufficient for the polling-subject sharing test of SIII-B-c.)
        """
        raise NotImplementedError


@dataclass(frozen=True)
class TrueFilter(Filter):
    """Matches everything."""

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return True

    def canonical(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFilter(Filter):
    """Matches nothing."""

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return False

    def canonical(self) -> str:
        return "false"


@dataclass(frozen=True)
class SrcIpFilter(Filter):
    """``srcIP <prefix>``"""

    prefix: Prefix

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return self.prefix.contains(key.src_ip)

    def canonical(self) -> str:
        return f"srcIP {self.prefix}"


@dataclass(frozen=True)
class DstIpFilter(Filter):
    """``dstIP <prefix>``"""

    prefix: Prefix

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return self.prefix.contains(key.dst_ip)

    def canonical(self) -> str:
        return f"dstIP {self.prefix}"


@dataclass(frozen=True)
class SrcPortFilter(Filter):
    """``srcPort <n>`` — transport-layer source port."""

    port: int

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return key.src_port == self.port

    def canonical(self) -> str:
        return f"srcPort {self.port}"


@dataclass(frozen=True)
class DstPortFilter(Filter):
    """``dstPort <n>`` — transport-layer destination port."""

    port: int

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return key.dst_port == self.port

    def canonical(self) -> str:
        return f"dstPort {self.port}"


@dataclass(frozen=True)
class ProtoFilter(Filter):
    """``proto <n>`` — IP protocol number."""

    proto: int

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return key.proto == self.proto

    def canonical(self) -> str:
        return f"proto {self.proto}"


@dataclass(frozen=True)
class TcpFlagsFilter(Filter):
    """``tcpFlags <mask>`` — all bits of ``mask`` set in the packet flags."""

    mask: int

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return (tcp_flags & self.mask) == self.mask

    def canonical(self) -> str:
        return f"tcpFlags {self.mask}"


@dataclass(frozen=True)
class SwitchPortFilter(Filter):
    """``port <n>`` / ``port ANY`` — a *switch interface* constraint.

    This is the ``port ANY`` of List. 2: it selects which interface
    statistics a poll reads, not a packet header field.  For packet matching
    it is vacuously true (interface dispatch happens before filtering).
    """

    port: int  # ANY_PORT means every port

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return True

    def canonical(self) -> str:
        return "port ANY" if self.port == ANY_PORT else f"port {self.port}"


@dataclass(frozen=True)
class AndFilter(Filter):
    """Conjunction (flattened at construction by :func:`and_`)."""

    operands: Tuple[Filter, ...]

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return all(op.matches_key(key, tcp_flags) for op in self.operands)

    def atoms(self) -> Iterable[Filter]:
        for op in self.operands:
            yield from op.atoms()

    def canonical(self) -> str:
        parts = sorted(op.canonical() for op in self.operands)
        return "(" + " and ".join(parts) + ")"


@dataclass(frozen=True)
class OrFilter(Filter):
    """Disjunction (flattened at construction by :func:`or_`)."""

    operands: Tuple[Filter, ...]

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return any(op.matches_key(key, tcp_flags) for op in self.operands)

    def atoms(self) -> Iterable[Filter]:
        for op in self.operands:
            yield from op.atoms()

    def canonical(self) -> str:
        parts = sorted(op.canonical() for op in self.operands)
        return "(" + " or ".join(parts) + ")"


@dataclass(frozen=True)
class NotFilter(Filter):
    """Negation."""

    operand: Filter

    def matches_key(self, key: FlowKey, tcp_flags: int = 0) -> bool:
        return not self.operand.matches_key(key, tcp_flags)

    def atoms(self) -> Iterable[Filter]:
        yield from self.operand.atoms()

    def canonical(self) -> str:
        return f"(not {self.operand.canonical()})"


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

def and_(*operands: Filter) -> Filter:
    """Conjunction with flattening and trivial simplification."""
    flat: list[Filter] = []
    for op in operands:
        if isinstance(op, AndFilter):
            flat.extend(op.operands)
        elif isinstance(op, FalseFilter):
            return FalseFilter()
        elif not isinstance(op, TrueFilter):
            flat.append(op)
    if not flat:
        return TrueFilter()
    if len(flat) == 1:
        return flat[0]
    return AndFilter(tuple(flat))


def or_(*operands: Filter) -> Filter:
    """Disjunction with flattening and trivial simplification."""
    flat: list[Filter] = []
    for op in operands:
        if isinstance(op, OrFilter):
            flat.extend(op.operands)
        elif isinstance(op, TrueFilter):
            return TrueFilter()
        elif not isinstance(op, FalseFilter):
            flat.append(op)
    if not flat:
        return FalseFilter()
    if len(flat) == 1:
        return flat[0]
    return OrFilter(tuple(flat))


def src_ip(prefix: Union[str, Prefix]) -> SrcIpFilter:
    return SrcIpFilter(Prefix.parse(prefix) if isinstance(prefix, str) else prefix)


def dst_ip(prefix: Union[str, Prefix]) -> DstIpFilter:
    return DstIpFilter(Prefix.parse(prefix) if isinstance(prefix, str) else prefix)


def switch_port(port: Union[int, str]) -> SwitchPortFilter:
    if isinstance(port, str):
        if port.upper() != "ANY":
            raise FarmError(f"unknown switch-port specifier: {port!r}")
        return SwitchPortFilter(ANY_PORT)
    return SwitchPortFilter(port)


def flow_filter(key: FlowKey) -> Filter:
    """The exact-match filter for one 5-tuple."""
    return and_(
        SrcIpFilter(Prefix.host(key.src_ip)),
        DstIpFilter(Prefix.host(key.dst_ip)),
        SrcPortFilter(key.src_port),
        DstPortFilter(key.dst_port),
        ProtoFilter(key.proto),
    )
