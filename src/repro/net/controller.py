"""SDN controller abstraction.

The seeder consults the controller for two things (SIII-B):

* ``phi_path`` — the set of switch paths carrying traffic matching a closed
  boolean filter formula (used to resolve ``place ... range`` directives);
* the global set of switches (used for ``place all`` / ``place any``).

The controller also exposes latency estimates between switches and a
collector node, which the collection-centric baselines (sFlow, Sonata)
charge on every report.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.net.filters import Filter
from repro.net.topology import Topology


class SdnController:
    """Resolves filter expressions against a topology."""

    def __init__(self, topology: Topology,
                 max_host_pairs: int = 4096) -> None:
        self.topology = topology
        #: Guard against quadratic blow-up on unconstrained queries.
        self.max_host_pairs = max_host_pairs

    # ------------------------------------------------------------------
    # phi_path
    # ------------------------------------------------------------------
    def paths_matching(self, fil: Filter) -> Set[Tuple[int, ...]]:
        """All switch paths that can carry traffic matching ``fil``.

        Source/destination host candidates are derived from the filter's IP
        prefix constraints (unconstrained means "all hosts").  Each candidate
        (src, dst) pair contributes its ECMP shortest switch paths.
        """
        src_hosts = self._hosts_for(fil.src_prefixes())
        dst_hosts = self._hosts_for(fil.dst_prefixes())
        pairs = [(s, d) for s, d in itertools.product(src_hosts, dst_hosts)
                 if s != d]
        if len(pairs) > self.max_host_pairs:
            raise TopologyError(
                f"filter resolves to {len(pairs)} host pairs "
                f"(limit {self.max_host_pairs}); add IP constraints")
        paths: Set[Tuple[int, ...]] = set()
        for src, dst in pairs:
            paths.update(self.topology.switch_paths(src, dst))
        return paths

    def _hosts_for(self, prefixes: frozenset) -> List[int]:
        if not prefixes:
            return self.topology.host_ids
        hosts: Set[int] = set()
        for prefix in prefixes:
            hosts.update(self.topology.hosts_in_prefix(prefix))
        return sorted(hosts)

    # ------------------------------------------------------------------
    # Switch inventory and latency estimates
    # ------------------------------------------------------------------
    def all_switches(self) -> List[int]:
        return sorted(self.topology.switch_ids)

    def switches_on_paths(self, paths: Set[Tuple[int, ...]]) -> Set[int]:
        return {node for path in paths for node in path}

    def control_latency(self, switch_id: int,
                        collector_id: Optional[int] = None) -> float:
        """One-way control-plane latency from a switch to the collector.

        When no explicit collector is modeled, a conventional in-DC RTT/2 of
        ~50 us plus per-hop latency to the nearest spine is charged.
        """
        spec = self.topology.node(switch_id)
        if not spec.is_switch:
            raise TopologyError(f"node {switch_id} is not a switch")
        base = 50e-6
        if collector_id is not None:
            import networkx as nx
            length = nx.shortest_path_length(
                self.topology.graph, switch_id, collector_id)
            return base + length * 5e-6
        hops = 0 if spec.kind == "spine" else 1
        return base + hops * 5e-6
