"""IPv4 addresses and CIDR prefixes.

The standard library's :mod:`ipaddress` is deliberately not used: filter
evaluation sits on the hot path of the switch emulator (every TCAM lookup and
every packet sample), and a plain-int representation with mask arithmetic is
several times faster while being ~100 lines of obviously-correct code.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Union

from repro.errors import FarmError

MAX_IPV4 = 0xFFFFFFFF


class AddressError(FarmError):
    """Malformed IPv4 address or prefix."""


def parse_ip(text: str) -> int:
    """Parse dotted-quad IPv4 into an int.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format an int as dotted-quad.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise AddressError(f"IPv4 value out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class Prefix:
    """An IPv4 CIDR prefix; hashable, comparable, and cheap to match against.

    A ``/32`` prefix denotes a single host.  Construction normalizes the
    network address (host bits are cleared).
    """

    __slots__ = ("network", "length", "_mask")

    def __init__(self, network: int, length: int) -> None:
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        if not 0 <= network <= MAX_IPV4:
            raise AddressError(f"IPv4 value out of range: {network}")
        self._mask = (MAX_IPV4 << (32 - length)) & MAX_IPV4 if length else 0
        self.network = network & self._mask
        self.length = length

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d"`` (host) or ``"a.b.c.d/len"`` (CIDR)."""
        return _parse_prefix_cached(text.strip())

    @classmethod
    def host(cls, ip: Union[int, str]) -> "Prefix":
        """A /32 prefix for a single host."""
        value = parse_ip(ip) if isinstance(ip, str) else ip
        return cls(value, 32)

    @property
    def mask(self) -> int:
        return self._mask

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    def contains(self, ip: int) -> bool:
        """True if the address falls inside this prefix."""
        return (ip & self._mask) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is a (non-strict) sub-prefix of this one."""
        return (self.length <= other.length
                and (other.network & self._mask) == self.network)

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share at least one address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def hosts(self, limit: int = 1 << 16) -> Iterator[int]:
        """Iterate host addresses in the prefix (bounded by ``limit``)."""
        count = min(self.num_addresses, limit)
        for offset in range(count):
            yield self.network + offset

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Prefix)
                and self.network == other.network
                and self.length == other.length)

    def __hash__(self) -> int:
        return hash((self.network, self.length))

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.length}"


@lru_cache(maxsize=4096)
def _parse_prefix_cached(text: str) -> Prefix:
    if "/" in text:
        address_text, _, length_text = text.partition("/")
        if not length_text.isdigit():
            raise AddressError(f"malformed prefix length in {text!r}")
        return Prefix(parse_ip(address_text), int(length_text))
    return Prefix(parse_ip(text), 32)


#: The all-addresses prefix, handy as a wildcard.
ANY_PREFIX = Prefix(0, 0)
