"""Packets, flow keys, and rate-based flows.

Simulating a 100 Gbps ASIC packet-by-packet is infeasible in Python, and the
paper's evaluation never needs it: what matters is *counters* (bytes/packets
per port, per TCAM rule) and occasional *samples*.  We therefore model
traffic as :class:`Flow` objects with piecewise-constant rates; counters are
integrals of those rates, and packet samples are materialized on demand by
the probing machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.errors import FarmError

# IP protocol numbers used throughout the task library.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

PROTO_NAMES = {PROTO_ICMP: "icmp", PROTO_TCP: "tcp", PROTO_UDP: "udp"}

# TCP flag bits (subset used by the monitoring tasks).
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


@dataclass(frozen=True)
class FlowKey:
    """Canonical 5-tuple identifying a flow."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction (for bidirectional protocols)."""
        return FlowKey(self.dst_ip, self.src_ip, self.dst_port,
                       self.src_port, self.proto)

    def __str__(self) -> str:
        from repro.net.addresses import format_ip
        name = PROTO_NAMES.get(self.proto, str(self.proto))
        return (f"{format_ip(self.src_ip)}:{self.src_port} -> "
                f"{format_ip(self.dst_ip)}:{self.dst_port}/{name}")


@dataclass(frozen=True)
class Packet:
    """A single (sampled or probed) packet."""

    key: FlowKey
    size: int = 1000  # bytes, headers included
    tcp_flags: int = 0
    ttl: int = 64
    timestamp: float = 0.0
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def src_ip(self) -> int:
        return self.key.src_ip

    @property
    def dst_ip(self) -> int:
        return self.key.dst_ip

    @property
    def src_port(self) -> int:
        return self.key.src_port

    @property
    def dst_port(self) -> int:
        return self.key.dst_port

    @property
    def proto(self) -> int:
        return self.key.proto

    @property
    def is_syn(self) -> bool:
        return bool(self.tcp_flags & TCP_SYN) and not (self.tcp_flags & TCP_ACK)

    @property
    def is_synack(self) -> bool:
        return bool(self.tcp_flags & TCP_SYN) and bool(self.tcp_flags & TCP_ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.tcp_flags & TCP_FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.tcp_flags & TCP_RST)

    def at(self, timestamp: float) -> "Packet":
        """A copy stamped with a new timestamp."""
        return replace(self, timestamp=timestamp)


class Flow:
    """A unidirectional flow with a piecewise-constant byte rate.

    ``rate_bps`` is in **bytes per second** (not bits).  The rate can change
    over time via :meth:`set_rate`; :meth:`bytes_between` integrates it.
    Rate-change history is kept so counter reads are exact regardless of when
    they happen.
    """

    __slots__ = ("key", "packet_size", "_segments", "label",
                 "default_tcp_flags")

    def __init__(self, key: FlowKey, rate_bps: float, start_time: float = 0.0,
                 packet_size: int = 1000, label: str = "",
                 default_tcp_flags: int = 0) -> None:
        if rate_bps < 0:
            raise FarmError(f"flow rate must be non-negative: {rate_bps}")
        if packet_size <= 0:
            raise FarmError(f"packet size must be positive: {packet_size}")
        self.key = key
        self.packet_size = packet_size
        self.label = label
        self.default_tcp_flags = default_tcp_flags
        # Sorted list of (time, rate) change points.  Rate is 0 before start.
        self._segments: list[tuple[float, float]] = [(start_time, rate_bps)]

    @property
    def rate_bps(self) -> float:
        """Current (latest-segment) rate in bytes/s."""
        return self._segments[-1][1]

    def rate_at(self, time: float) -> float:
        """The rate in effect at ``time``."""
        rate = 0.0
        for seg_time, seg_rate in self._segments:
            if seg_time <= time:
                rate = seg_rate
            else:
                break
        return rate

    def set_rate(self, rate_bps: float, at_time: float) -> None:
        """Change the rate at ``at_time`` (must be >= last change point)."""
        if rate_bps < 0:
            raise FarmError(f"flow rate must be non-negative: {rate_bps}")
        last_time, last_rate = self._segments[-1]
        if at_time < last_time:
            raise FarmError(
                f"rate changes must be chronological: {at_time} < {last_time}")
        if at_time == last_time:
            self._segments[-1] = (at_time, rate_bps)
        elif rate_bps != last_rate:
            self._segments.append((at_time, rate_bps))

    def stop(self, at_time: float) -> None:
        """Set the rate to zero from ``at_time`` onward."""
        self.set_rate(0.0, at_time)

    def bytes_between(self, t0: float, t1: float) -> float:
        """Integral of the rate over ``[t0, t1]``."""
        if t1 < t0:
            raise FarmError(f"bad interval: [{t0}, {t1}]")
        total = 0.0
        segments = self._segments
        for index, (seg_start, rate) in enumerate(segments):
            seg_end = (segments[index + 1][0]
                       if index + 1 < len(segments) else float("inf"))
            lo = max(t0, seg_start)
            hi = min(t1, seg_end)
            if hi > lo and rate > 0:
                total += rate * (hi - lo)
        return total

    def packets_between(self, t0: float, t1: float) -> float:
        """Approximate packet count over ``[t0, t1]``."""
        return self.bytes_between(t0, t1) / self.packet_size

    def sample_packet(self, timestamp: float,
                      tcp_flags: Optional[int] = None,
                      payload: Optional[Dict[str, Any]] = None) -> Packet:
        """Materialize one representative packet of this flow."""
        flags = self.default_tcp_flags if tcp_flags is None else tcp_flags
        return Packet(key=self.key, size=self.packet_size,
                      tcp_flags=flags, timestamp=timestamp,
                      payload=dict(payload or {}))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flow {self.key} {self.rate_bps:.0f} B/s {self.label}>"
