"""Network substrate: addresses, packets, filters, topology, traffic."""

from repro.net.addresses import ANY_PREFIX, Prefix, format_ip, parse_ip
from repro.net.controller import SdnController
from repro.net.filters import (
    ANY_PORT,
    AndFilter,
    DstIpFilter,
    DstPortFilter,
    FalseFilter,
    Filter,
    NotFilter,
    OrFilter,
    ProtoFilter,
    SrcIpFilter,
    SrcPortFilter,
    SwitchPortFilter,
    TcpFlagsFilter,
    TrueFilter,
    and_,
    dst_ip,
    flow_filter,
    or_,
    src_ip,
    switch_port,
)
from repro.net.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    Flow,
    FlowKey,
    Packet,
)
from repro.net.topology import Topology, linear_topology, spine_leaf
from repro.net.trace import TraceProfile, TraceWorkload

__all__ = [
    "ANY_PREFIX", "Prefix", "format_ip", "parse_ip",
    "SdnController",
    "ANY_PORT", "AndFilter", "DstIpFilter", "DstPortFilter", "FalseFilter",
    "Filter", "NotFilter", "OrFilter", "ProtoFilter", "SrcIpFilter",
    "SrcPortFilter", "SwitchPortFilter", "TcpFlagsFilter", "TrueFilter",
    "and_", "dst_ip", "flow_filter", "or_", "src_ip", "switch_port",
    "PROTO_ICMP", "PROTO_TCP", "PROTO_UDP", "Flow", "FlowKey", "Packet",
    "Topology", "linear_topology", "spine_leaf",
    "TraceProfile", "TraceWorkload",
]
