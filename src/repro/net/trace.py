"""Trace-style synthetic traffic: the statistical shape of DC traffic.

Production traces (the paper's SAP data center) are unavailable, so this
module generates workloads with the *published* statistical properties of
data-center traffic (Benson et al., IMC'10; Roy et al., SIGCOMM'15):

* flow sizes are heavy-tailed (bounded Zipf/Pareto): most flows are mice,
  a tiny fraction of elephants carries most bytes;
* flow arrivals are Poisson within an epoch;
* flow durations are log-uniform between bounds;
* the active-flow population churns continuously (arrivals + expiries),
  unlike the static rate sets of :mod:`repro.net.traffic`.

This is the workload to use when a benchmark needs realistic churn rather
than a controlled parameter sweep.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.errors import FarmError
from repro.net.addresses import parse_ip
from repro.net.packet import PROTO_TCP, PROTO_UDP, Flow, FlowKey
from repro.net.traffic import Workload


@dataclass(frozen=True)
class TraceProfile:
    """Statistical knobs of the generated traffic."""

    mean_arrivals_per_s: float = 200.0
    zipf_exponent: float = 1.2       # flow-size tail index
    min_flow_bytes: float = 2e3      # mouse floor (a few packets)
    max_flow_bytes: float = 1e9      # elephant ceiling
    min_duration_s: float = 0.05
    max_duration_s: float = 30.0
    num_ports: int = 48
    num_hosts: int = 200
    udp_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.mean_arrivals_per_s <= 0:
            raise FarmError("arrival rate must be positive")
        if self.zipf_exponent <= 1.0:
            raise FarmError("zipf exponent must exceed 1 for a finite mean")
        if self.min_flow_bytes >= self.max_flow_bytes:
            raise FarmError("flow-size bounds inverted")
        if self.min_duration_s >= self.max_duration_s:
            raise FarmError("duration bounds inverted")


class TraceWorkload(Workload):
    """Continuously churning flows with heavy-tailed sizes.

    Each arrival draws a size from a bounded Pareto (the continuous Zipf
    analogue), a duration log-uniformly, and runs at ``size/duration``
    until it expires and detaches.  Ground truth for HH-style tasks is
    :meth:`elephants_active` (flows whose *rate* exceeds a threshold).
    """

    def __init__(self, profile: Optional[TraceProfile] = None,
                 horizon_s: float = 60.0, seed: int = 0) -> None:
        super().__init__(seed)
        self.profile = profile or TraceProfile()
        self.horizon_s = horizon_s
        self.active: Set[Flow] = set()
        self.completed = 0
        self.bytes_offered = 0.0

    # -- distributions -----------------------------------------------------
    def _draw_flow_bytes(self) -> float:
        """Bounded Pareto via inverse transform."""
        profile = self.profile
        alpha = profile.zipf_exponent - 1.0
        low, high = profile.min_flow_bytes, profile.max_flow_bytes
        u = self.rng.random()
        ratio = (high / low) ** alpha
        return low * (1.0 - u * (1.0 - 1.0 / ratio)) ** (-1.0 / alpha)

    def _draw_duration(self) -> float:
        profile = self.profile
        log_low = math.log(profile.min_duration_s)
        log_high = math.log(profile.max_duration_s)
        return math.exp(self.rng.uniform(log_low, log_high))

    def _draw_key(self) -> FlowKey:
        profile = self.profile
        src = parse_ip("10.0.0.0") + self.rng.randrange(profile.num_hosts)
        dst = parse_ip("10.128.0.0") + self.rng.randrange(profile.num_hosts)
        proto = (PROTO_UDP if self.rng.random() < profile.udp_fraction
                 else PROTO_TCP)
        return FlowKey(src, dst, self.rng.randrange(32768, 61000),
                       self.rng.choice((80, 443, 53, 8080, 22)), proto)

    # -- lifecycle --------------------------------------------------------
    def _build(self) -> None:
        assert self._sim is not None
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        assert self._sim is not None
        if self._sim.now >= self.horizon_s:
            return
        gap = self.rng.expovariate(self.profile.mean_arrivals_per_s)
        self._sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        assert self._sim is not None and self._sink is not None
        size = self._draw_flow_bytes()
        duration = self._draw_duration()
        rate = size / duration
        key = self._draw_key()
        port = self.rng.randrange(self.profile.num_ports)
        flow = self._make_flow(key, rate, in_port=port, out_port=port,
                               packet_size=1400 if size > 1e5 else 200,
                               label=f"trace{self.stats.flows_created}")
        self.active.add(flow)
        self.bytes_offered += size
        self._sim.schedule(duration, self._expire, flow)
        self._schedule_next_arrival()

    def _expire(self, flow: Flow) -> None:
        assert self._sim is not None and self._sink is not None
        if flow not in self.active:
            return
        self.active.discard(flow)
        self.completed += 1
        flow.stop(at_time=self._sim.now)
        self._sink.detach_flow(flow)

    # -- ground truth -----------------------------------------------------
    def elephants_active(self, threshold_bps: float) -> List[Flow]:
        assert self._sim is not None
        now = self._sim.now
        return [flow for flow in self.active
                if flow.rate_at(now) >= threshold_bps]

    def offered_load_bps(self) -> float:
        assert self._sim is not None
        now = self._sim.now
        return sum(flow.rate_at(now) for flow in self.active)

    def heavy_tail_share(self, top_fraction: float = 0.1) -> float:
        """Fraction of current offered load carried by the top flows —
        the heavy-tail sanity metric (should be >> top_fraction)."""
        assert self._sim is not None
        now = self._sim.now
        rates = sorted((flow.rate_at(now) for flow in self.active),
                       reverse=True)
        if not rates:
            return 0.0
        top = max(1, int(len(rates) * top_fraction))
        total = sum(rates)
        return sum(rates[:top]) / total if total else 0.0
