"""Synthetic traffic workloads.

The paper evaluates FARM in a production SAP data center; production traces
are obviously unavailable, so each scenario in SVI is backed by a synthetic
workload that reproduces the *parameterization the paper states*: e.g. for
heavy hitters, "HHs usually affect 1% of network ports, 10% at worst, and
the HH ratio changes up to once a minute" (SVI-B-b).

Workloads drive any object satisfying the :class:`TrafficSink` protocol
(the switch emulator's ASIC implements it) and expose ground truth so tests
and benchmarks can score detection accuracy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Set

from repro.errors import FarmError
from repro.net.addresses import parse_ip
from repro.net.packet import PROTO_TCP, PROTO_UDP, Flow, FlowKey, TCP_SYN
from repro.sim.engine import Simulator


class TrafficSink(Protocol):
    """Anything flows can be attached to (implemented by the ASIC model)."""

    def attach_flow(self, flow: Flow, in_port: int, out_port: int) -> None:
        """Start accounting ``flow`` entering ``in_port``, leaving ``out_port``."""

    def detach_flow(self, flow: Flow) -> None:
        """Stop accounting ``flow`` (its rate becomes irrelevant)."""


def _ip(base: str, offset: int) -> int:
    return parse_ip(base) + offset


@dataclass
class WorkloadStats:
    """Bookkeeping every workload maintains."""

    flows_created: int = 0
    rate_changes: int = 0
    churn_events: int = 0


class Workload:
    """Base class: owns a deterministic RNG and its created flows."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.flows: List[Flow] = []
        self.stats = WorkloadStats()
        self._sim: Optional[Simulator] = None
        self._sink: Optional[TrafficSink] = None

    def start(self, sim: Simulator, sink: TrafficSink) -> None:
        """Attach initial flows and schedule evolution events."""
        self._sim = sim
        self._sink = sink
        self._build()

    def _build(self) -> None:
        raise NotImplementedError

    def _make_flow(self, key: FlowKey, rate_bps: float, in_port: int,
                   out_port: int, packet_size: int = 1000,
                   label: str = "", tcp_flags: int = 0) -> Flow:
        assert self._sim is not None and self._sink is not None
        flow = Flow(key, rate_bps, start_time=self._sim.now,
                    packet_size=packet_size, label=label,
                    default_tcp_flags=tcp_flags)
        self.flows.append(flow)
        self.stats.flows_created += 1
        self._sink.attach_flow(flow, in_port, out_port)
        return flow


class UniformWorkload(Workload):
    """Background "mice": one modest flow per port."""

    def __init__(self, num_ports: int, rate_bps: float = 1e5,
                 seed: int = 0) -> None:
        super().__init__(seed)
        self.num_ports = num_ports
        self.rate_bps = rate_bps

    def _build(self) -> None:
        for port in range(self.num_ports):
            key = FlowKey(_ip("10.0.0.0", port + 1),
                          _ip("10.128.0.0", port + 1),
                          40000 + port, 80, PROTO_TCP)
            self._make_flow(key, self.rate_bps, in_port=port, out_port=port,
                            label=f"bg{port}")


class HeavyHitterWorkload(Workload):
    """The SVI-B heavy-hitter scenario.

    ``num_ports`` ports each carry one flow; a fraction ``hh_ratio`` of them
    run above ``hh_rate_bps`` (the rest at ``mouse_rate_bps``).  Every
    ``churn_interval`` seconds a new HH subset is drawn, modeling the
    "HH ratio changes up to once a minute" observation.
    """

    def __init__(self, num_ports: int, hh_ratio: float = 0.01,
                 hh_rate_bps: float = 1e8, mouse_rate_bps: float = 1e5,
                 churn_interval: Optional[float] = 60.0,
                 seed: int = 0) -> None:
        if not 0 <= hh_ratio <= 1:
            raise FarmError(f"hh_ratio must be in [0,1]: {hh_ratio}")
        if hh_rate_bps <= mouse_rate_bps:
            raise FarmError("heavy rate must exceed mouse rate")
        super().__init__(seed)
        self.num_ports = num_ports
        self.hh_ratio = hh_ratio
        self.hh_rate_bps = hh_rate_bps
        self.mouse_rate_bps = mouse_rate_bps
        self.churn_interval = churn_interval
        self._port_flows: Dict[int, Flow] = {}
        self.current_heavy_ports: Set[int] = set()

    @property
    def num_heavy(self) -> int:
        return max(1, round(self.num_ports * self.hh_ratio))

    def _build(self) -> None:
        assert self._sim is not None
        for port in range(self.num_ports):
            key = FlowKey(_ip("10.0.0.0", port + 1),
                          _ip("10.128.0.0", port + 1),
                          40000 + port, 443, PROTO_TCP)
            self._port_flows[port] = self._make_flow(
                key, self.mouse_rate_bps, in_port=port, out_port=port,
                label=f"flow{port}")
        self._reshuffle()
        if self.churn_interval:
            self._sim.every(self.churn_interval, self._reshuffle,
                            label="hh-churn",
                            cost_key=("traffic", None, None, "hh-churn"))

    def _reshuffle(self) -> None:
        """Draw a fresh heavy subset and adjust flow rates."""
        assert self._sim is not None
        now = self._sim.now
        new_heavy = set(self.rng.sample(range(self.num_ports), self.num_heavy))
        for port in self.current_heavy_ports - new_heavy:
            self._port_flows[port].set_rate(self.mouse_rate_bps, now)
            self.stats.rate_changes += 1
        for port in new_heavy - self.current_heavy_ports:
            self._port_flows[port].set_rate(self.hh_rate_bps, now)
            self.stats.rate_changes += 1
        self.current_heavy_ports = new_heavy
        self.stats.churn_events += 1

    def make_port_heavy(self, port: int) -> None:
        """Force one specific port heavy *now* (used by latency benchmarks)."""
        assert self._sim is not None
        self._port_flows[port].set_rate(self.hh_rate_bps, self._sim.now)
        self.current_heavy_ports.add(port)
        self.stats.rate_changes += 1

    def true_heavy_ports(self) -> Set[int]:
        """Ground truth for accuracy scoring."""
        return set(self.current_heavy_ports)


class DDoSWorkload(Workload):
    """Volumetric DDoS: ``num_sources`` hosts flood a single victim."""

    def __init__(self, num_sources: int, victim_ip: str = "10.200.0.1",
                 per_source_rate_bps: float = 1e6, attack_port: int = 80,
                 start_delay: float = 0.0, seed: int = 0) -> None:
        super().__init__(seed)
        self.num_sources = num_sources
        self.victim_ip = victim_ip
        self.per_source_rate_bps = per_source_rate_bps
        self.attack_port = attack_port
        self.start_delay = start_delay

    def _build(self) -> None:
        assert self._sim is not None
        if self.start_delay:
            self._sim.schedule(self.start_delay, self._launch,
                               label="ddos-launch",
                               cost_key=("traffic", None, None,
                                         "ddos-launch"))
        else:
            self._launch()

    def _launch(self) -> None:
        victim = parse_ip(self.victim_ip)
        for i in range(self.num_sources):
            key = FlowKey(_ip("172.16.0.0", i + 1), victim,
                          50000 + (i % 1000), self.attack_port, PROTO_UDP)
            self._make_flow(key, self.per_source_rate_bps,
                            in_port=i % 48, out_port=0, packet_size=512,
                            label=f"ddos{i}")

    @property
    def aggregate_rate_bps(self) -> float:
        return self.num_sources * self.per_source_rate_bps


class SynFloodWorkload(Workload):
    """TCP SYN flood: high rate of small SYN-only packets at one service."""

    def __init__(self, syn_rate_pps: float, victim_ip: str = "10.200.0.2",
                 victim_port: int = 443, num_sources: int = 64,
                 seed: int = 0) -> None:
        super().__init__(seed)
        self.syn_rate_pps = syn_rate_pps
        self.victim_ip = victim_ip
        self.victim_port = victim_port
        self.num_sources = num_sources

    def _build(self) -> None:
        victim = parse_ip(self.victim_ip)
        per_source_pps = self.syn_rate_pps / self.num_sources
        for i in range(self.num_sources):
            key = FlowKey(_ip("172.20.0.0", i + 1), victim,
                          50000 + i, self.victim_port, PROTO_TCP)
            # 60-byte SYN segments.
            self._make_flow(key, per_source_pps * 60, in_port=i % 48,
                            out_port=0, packet_size=60, label=f"syn{i}",
                            tcp_flags=TCP_SYN)

    def sample_syn_packet(self, timestamp: float, source_index: int = 0):
        """A representative SYN packet for probing paths."""
        flow = self.flows[source_index % len(self.flows)]
        return flow.sample_packet(timestamp, tcp_flags=TCP_SYN)


class PortScanWorkload(Workload):
    """One scanner probing many destination ports on one target."""

    def __init__(self, num_ports_scanned: int, scanner_ip: str = "172.31.0.9",
                 target_ip: str = "10.50.0.1", probe_rate_pps: float = 100.0,
                 seed: int = 0) -> None:
        super().__init__(seed)
        self.num_ports_scanned = num_ports_scanned
        self.scanner_ip = scanner_ip
        self.target_ip = target_ip
        self.probe_rate_pps = probe_rate_pps

    def _build(self) -> None:
        scanner = parse_ip(self.scanner_ip)
        target = parse_ip(self.target_ip)
        per_port_pps = self.probe_rate_pps / self.num_ports_scanned
        for i in range(self.num_ports_scanned):
            key = FlowKey(scanner, target, 55555, 1 + i, PROTO_TCP)
            self._make_flow(key, per_port_pps * 60, in_port=0, out_port=0,
                            packet_size=60, label=f"scan{i}",
                            tcp_flags=TCP_SYN)


class SuperSpreaderWorkload(Workload):
    """One source contacting many distinct destinations (SVI use case)."""

    def __init__(self, fanout: int, spreader_ip: str = "172.18.0.7",
                 per_dest_rate_bps: float = 5e4, seed: int = 0) -> None:
        super().__init__(seed)
        self.fanout = fanout
        self.spreader_ip = spreader_ip
        self.per_dest_rate_bps = per_dest_rate_bps

    def _build(self) -> None:
        spreader = parse_ip(self.spreader_ip)
        for i in range(self.fanout):
            key = FlowKey(spreader, _ip("10.64.0.0", i + 1),
                          47000, 80, PROTO_TCP)
            self._make_flow(key, self.per_dest_rate_bps, in_port=0,
                            out_port=i % 48, label=f"spread{i}")


class DnsReflectionWorkload(Workload):
    """Amplified DNS responses (src port 53, large UDP) converging on a victim."""

    def __init__(self, num_reflectors: int, victim_ip: str = "10.200.0.3",
                 per_reflector_rate_bps: float = 2e6, seed: int = 0) -> None:
        super().__init__(seed)
        self.num_reflectors = num_reflectors
        self.victim_ip = victim_ip
        self.per_reflector_rate_bps = per_reflector_rate_bps

    def _build(self) -> None:
        victim = parse_ip(self.victim_ip)
        for i in range(self.num_reflectors):
            key = FlowKey(_ip("8.8.0.0", i + 1), victim, 53,
                          33000 + i, PROTO_UDP)
            self._make_flow(key, self.per_reflector_rate_bps, in_port=i % 48,
                            out_port=0, packet_size=3000, label=f"dns{i}")


class SlowlorisWorkload(Workload):
    """Many long-lived, extremely slow TCP connections to one server."""

    def __init__(self, num_connections: int, server_ip: str = "10.80.0.1",
                 per_conn_rate_bps: float = 50.0, seed: int = 0) -> None:
        super().__init__(seed)
        self.num_connections = num_connections
        self.server_ip = server_ip
        self.per_conn_rate_bps = per_conn_rate_bps

    def _build(self) -> None:
        server = parse_ip(self.server_ip)
        for i in range(self.num_connections):
            key = FlowKey(_ip("172.25.0.0", i + 1), server,
                          52000 + i, 80, PROTO_TCP)
            self._make_flow(key, self.per_conn_rate_bps, in_port=i % 48,
                            out_port=0, packet_size=100, label=f"slow{i}")


class SshBruteForceWorkload(Workload):
    """Repeated short TCP connections to port 22 from a small attacker set."""

    def __init__(self, num_attackers: int, target_ip: str = "10.90.0.1",
                 attempts_per_second: float = 10.0, seed: int = 0) -> None:
        super().__init__(seed)
        self.num_attackers = num_attackers
        self.target_ip = target_ip
        self.attempts_per_second = attempts_per_second

    def _build(self) -> None:
        target = parse_ip(self.target_ip)
        for i in range(self.num_attackers):
            key = FlowKey(_ip("172.28.0.0", i + 1), target,
                          58000 + i, 22, PROTO_TCP)
            # ~500 bytes of handshake + failed auth per attempt.
            self._make_flow(key, self.attempts_per_second * 500,
                            in_port=i % 48, out_port=0, packet_size=250,
                            label=f"ssh{i}")
