"""The switch chassis: ASIC + management CPU + PCIe bus + TCAM.

Hardware models mirror the four platforms of SVI-A.  A chassis exposes the
resource inventory the placement optimizer consumes (``ares(n, r)``):
vCPU cores, RAM (MB), monitoring TCAM entries, and PCIe polling capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SwitchError
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator
from repro.switchsim.asic import Asic
from repro.switchsim.cpu import ManagementCpu
from repro.switchsim.pcie import PcieBus
from repro.switchsim.tcam import Tcam

# Canonical resource-type names, used by Almanac's runtime library
# (res().vCPU etc.), the soil's accounting, and the placement model.
R_VCPU = "vCPU"
R_RAM = "RAM"
R_TCAM = "TCAM"
R_PCIE = "PCIe"

RESOURCE_TYPES = (R_VCPU, R_RAM, R_TCAM, R_PCIE)

#: PCIe polling capacity is expressed in KB/s units so that utility
#: expressions like ``10 / res().PCIe`` (List. 2) yield sane intervals.
PCIE_UNIT_BPS = 1000.0


@dataclass(frozen=True)
class SwitchModel:
    """Static hardware description of a switch platform."""

    name: str
    num_ports: int
    cpu_cores: int
    ram_mb: int
    tcam_entries: int
    line_rate_bps: float
    pcie_poll_bps: float = 1e6  # 8 Mbps, SVI-E-a
    os: str = "ONL"

    def available_resources(self) -> Dict[str, float]:
        """The ``ares(n, r)`` vector for this platform."""
        return {
            R_VCPU: float(self.cpu_cores),
            R_RAM: float(self.ram_mb),
            R_TCAM: float(int(self.tcam_entries * 0.25)),  # monitoring share
            R_PCIE: self.pcie_poll_bps / PCIE_UNIT_BPS,
        }


# The four evaluation platforms (SVI-A-a).
APS_BF2556X = SwitchModel(
    name="APS BF2556X-1T", num_ports=56, cpu_cores=8, ram_mb=32768,
    tcam_entries=4096, line_rate_bps=2.5e11, os="ONL")
ACCTON_AS5712 = SwitchModel(
    name="Accton AS5712", num_ports=54, cpu_cores=4, ram_mb=8192,
    tcam_entries=2048, line_rate_bps=1.25e10, os="ONL")
ACCTON_AS7712 = SwitchModel(
    name="Accton AS7712", num_ports=54, cpu_cores=4, ram_mb=16384,
    tcam_entries=2048, line_rate_bps=1.25e10, os="ONL")
ARISTA_7280QRA = SwitchModel(
    name="Arista 7280QRA-C36S", num_ports=36, cpu_cores=4, ram_mb=8192,
    tcam_entries=3072, line_rate_bps=1.25e10, os="EOS")

PLATFORMS = {
    model.name: model
    for model in (APS_BF2556X, ACCTON_AS5712, ACCTON_AS7712, ARISTA_7280QRA)
}


class Switch:
    """A full emulated switch tied to a topology node."""

    def __init__(self, sim: Simulator, switch_id: int,
                 model: SwitchModel = ACCTON_AS5712,
                 name: str = "",
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.switch_id = switch_id
        self.model = model
        self.name = name or f"{model.name}#{switch_id}"
        # One label set shared by every resource model of this chassis, so
        # a fleet-wide registry can slice per switch.
        self.metrics = registry or MetricsRegistry(clock=lambda: sim.now)
        labels = {"switch": switch_id}
        self.tcam = Tcam(capacity=model.tcam_entries, monitoring_share=0.25,
                         registry=self.metrics, labels=labels)
        self.asic = Asic(sim, num_ports=model.num_ports,
                         line_rate_bps=model.line_rate_bps, tcam=self.tcam,
                         name=f"sw{switch_id}.asic")
        self.pcie = PcieBus(sim, poll_capacity_bps=model.pcie_poll_bps,
                            name=f"sw{switch_id}.pcie",
                            registry=self.metrics, labels=labels)
        self.cpu = ManagementCpu(sim, num_cores=model.cpu_cores,
                                 name=f"sw{switch_id}.cpu",
                                 registry=self.metrics, labels=labels)

    def available_resources(self) -> Dict[str, float]:
        """Total resource inventory (before any seed allocations)."""
        return self.model.available_resources()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.switch_id} {self.model.name}>"


class SwitchFleet:
    """All emulated switches of a deployment, indexed by topology node id."""

    def __init__(self, sim: Simulator,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.metrics = registry or MetricsRegistry(clock=lambda: sim.now)
        self._switches: Dict[int, Switch] = {}

    def add(self, switch_id: int,
            model: SwitchModel = ACCTON_AS5712) -> Switch:
        if switch_id in self._switches:
            raise SwitchError(f"switch {switch_id} already exists")
        switch = Switch(self.sim, switch_id, model, registry=self.metrics)
        self._switches[switch_id] = switch
        return switch

    def get(self, switch_id: int) -> Switch:
        try:
            return self._switches[switch_id]
        except KeyError:
            raise SwitchError(f"unknown switch {switch_id}") from None

    def __contains__(self, switch_id: int) -> bool:
        return switch_id in self._switches

    def __iter__(self):
        return iter(sorted(self._switches.values(),
                           key=lambda sw: sw.switch_id))

    def __len__(self) -> int:
        return len(self._switches)

    @classmethod
    def for_topology(cls, sim: Simulator, topology,
                     model: SwitchModel = ACCTON_AS5712,
                     registry: Optional[MetricsRegistry] = None
                     ) -> "SwitchFleet":
        """One emulated switch per topology switch node."""
        fleet = cls(sim, registry=registry)
        for switch_id in topology.switch_ids:
            fleet.add(switch_id, model)
        return fleet
