"""Forwarding-ASIC model.

The ASIC carries attached rate-based flows between ports, maintains exact
per-port and per-TCAM-rule counters (integrals of flow rates), applies rule
actions (drop / rate-limit / QoS), and materializes packet samples for
probing.  Its internal bandwidth dwarfs the PCIe management path (SVI-E-a
measures a 1:12500 ratio), which is why counter values live *here* and every
read must cross the :class:`~repro.switchsim.pcie.PcieBus`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

try:  # numpy accelerates batched counter reads; scalar path works without
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro.errors import SwitchError
from repro.net.filters import Filter
from repro.net.packet import Flow, Packet
from repro.sim.engine import Simulator
from repro.sim.resources import CapacityMeter
from repro.switchsim.tcam import RuleAction, Tcam, TcamRule


@dataclass
class PortStats:
    """Snapshot of one port's counters at a point in time."""

    port: int
    time: float
    tx_bytes: float
    tx_packets: float
    rate_bps: float  # instantaneous rate at snapshot time

    def as_dict(self) -> Dict[str, float]:
        return {"port": self.port, "time": self.time,
                "tx_bytes": self.tx_bytes, "tx_packets": self.tx_packets,
                "rate_bps": self.rate_bps}


@dataclass
class RuleStats:
    """Snapshot of one TCAM rule's hit counters."""

    rule_id: int
    time: float
    matched_bytes: float
    matched_packets: float


@dataclass
class _Attachment:
    flow: Flow
    in_port: int
    out_port: int
    attached_at: float
    detached_at: Optional[float] = None

    def active_at(self, time: float) -> bool:
        return (self.attached_at <= time
                and (self.detached_at is None or time < self.detached_at))

    def window(self, t0: float, t1: float) -> Tuple[float, float]:
        lo = max(t0, self.attached_at)
        hi = t1 if self.detached_at is None else min(t1, self.detached_at)
        return lo, hi


class Asic:
    """The packet-processing domain of a switch.

    Implements the :class:`~repro.net.traffic.TrafficSink` protocol so
    workloads can attach flows directly.
    """

    def __init__(self, sim: Simulator, num_ports: int = 48,
                 line_rate_bps: float = 1.25e10,
                 tcam: Optional[Tcam] = None, name: str = "asic") -> None:
        if num_ports <= 0:
            raise SwitchError(f"port count must be positive: {num_ports}")
        self.sim = sim
        self.num_ports = num_ports
        self.name = name
        self.tcam = tcam if tcam is not None else Tcam(capacity=2048)
        #: Aggregate fabric bandwidth; Fig. 8's "ASIC bus".
        self.fabric = CapacityMeter(sim, capacity=line_rate_bps * num_ports,
                                    name=f"{name}.fabric")
        self._attachments: List[_Attachment] = []
        self._by_flow: Dict[int, _Attachment] = {}
        # Cached numpy columns over the attachment list (out_port,
        # attached_at, packet_size are attach-time constants; the list
        # itself only ever appends).  Rebuilt when the count changes.
        self._batch_static: Optional[tuple] = None

    # ------------------------------------------------------------------
    # TrafficSink protocol
    # ------------------------------------------------------------------
    def attach_flow(self, flow: Flow, in_port: int, out_port: int) -> None:
        """Begin carrying ``flow`` from ``in_port`` to ``out_port``."""
        for port in (in_port, out_port):
            self._check_port(port)
        if id(flow) in self._by_flow:
            raise SwitchError(f"flow already attached: {flow!r}")
        attachment = _Attachment(flow, in_port, out_port, self.sim.now)
        self._attachments.append(attachment)
        self._by_flow[id(flow)] = attachment
        self.fabric.add_demand(flow.rate_bps)

    def detach_flow(self, flow: Flow) -> None:
        """Stop carrying ``flow``; its counters freeze at the detach time."""
        attachment = self._by_flow.pop(id(flow), None)
        if attachment is None:
            raise SwitchError(f"flow not attached: {flow!r}")
        attachment.detached_at = self.sim.now
        self.fabric.remove_demand(flow.rate_at(self.sim.now))

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.num_ports:
            raise SwitchError(
                f"port {port} out of range (switch has {self.num_ports})")

    # ------------------------------------------------------------------
    # Rule effects on flows
    # ------------------------------------------------------------------
    def _rule_applies(self, rule: TcamRule, attachment: _Attachment) -> bool:
        """Does a rule match this flow, including switch-port constraints?

        ``port <n>`` filters are interface constraints; they are vacuous on
        bare flow keys but the ASIC dispatches per port, so they are
        enforced here against the attachment's ports.
        """
        if not rule.matches_key(attachment.flow.key):
            return False
        ports = rule.pattern.switch_ports()
        if ports is None:
            return True
        from repro.net.filters import ANY_PORT
        if ANY_PORT in ports:
            return True
        return attachment.out_port in ports or attachment.in_port in ports

    def _matching_rule(self, attachment: _Attachment) -> Optional[TcamRule]:
        self.tcam._ensure_sorted()
        for rule in self.tcam._sorted:
            if self._rule_applies(rule, attachment):
                return rule
        return None

    def _effective_rate(self, attachment: _Attachment, time: float) -> float:
        """Flow rate after TCAM actions (drop / rate-limit) are applied."""
        rate = attachment.flow.rate_at(time)
        rule = self._matching_rule(attachment)
        if rule is None:
            return rate
        if rule.action is RuleAction.DROP:
            return 0.0
        if rule.action is RuleAction.RATE_LIMIT:
            limit = float(rule.params.get("rate_bps", rate))
            return min(rate, limit)
        return rate

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def read_port_stats(self, port: int) -> PortStats:
        """Exact counters for ``port`` as of now (egress accounting)."""
        self._check_port(port)
        now = self.sim.now
        tx_bytes = 0.0
        tx_packets = 0.0
        rate = 0.0
        for attachment in self._attachments:
            if attachment.out_port != port:
                continue
            lo, hi = attachment.window(0.0, now)
            if hi > lo:
                tx_bytes += attachment.flow.bytes_between(lo, hi)
                tx_packets += attachment.flow.packets_between(lo, hi)
            if attachment.active_at(now):
                rate += self._effective_rate(attachment, now)
        return PortStats(port, now, tx_bytes, tx_packets, rate)

    def read_all_port_stats(self) -> List[PortStats]:
        return self.read_port_stats_batch(range(self.num_ports))

    def read_port_stats_batch(
            self, ports: Optional[Iterable[int]] = None) -> List[PortStats]:
        """Counters for many ports in one array pass.

        Equivalent to ``[read_port_stats(p) for p in ports]`` — bit-for-bit:
        contributions accumulate in attachment order (``np.add.at`` is
        unbuffered, so per-port float sums round exactly like the scalar
        loop) and each single-segment integral is the same ``rate * span``
        product.  Multi-segment flows and TCAM-modified instantaneous
        rates drop to the scalar helpers per attachment, but their
        contributions still land in the shared array pass.  The scalar
        loop is O(ports x attachments); this is one O(attachments) sweep.
        """
        port_list = (list(range(self.num_ports)) if ports is None
                     else list(ports))
        for port in port_list:
            self._check_port(port)
        attachments = self._attachments
        n = len(attachments)
        if np is None or not n:
            return [self.read_port_stats(port) for port in port_list]
        now = self.sim.now
        static = self._batch_static
        if static is None or static[0] != n:
            out_ports = np.fromiter((a.out_port for a in attachments),
                                    dtype=np.int64, count=n)
            attached = np.fromiter((a.attached_at for a in attachments),
                                   dtype=np.float64, count=n)
            psize = np.fromiter(
                (a.flow.packet_size for a in attachments),
                dtype=np.float64, count=n)
            self._batch_static = static = (n, out_ports, attached, psize)
        _, out_ports, attached, psize = static
        inf = float("inf")
        det = np.fromiter(
            (inf if a.detached_at is None else a.detached_at
             for a in attachments), dtype=np.float64, count=n)
        seg0 = np.fromiter((a.flow._segments[0][0] for a in attachments),
                           dtype=np.float64, count=n)
        rate0 = np.fromiter((a.flow._segments[0][1] for a in attachments),
                            dtype=np.float64, count=n)
        multi = np.fromiter((len(a.flow._segments) > 1
                             for a in attachments), dtype=bool, count=n)
        lo = np.maximum(0.0, attached)
        hi = np.minimum(now, det)
        span = hi - np.maximum(lo, seg0)
        simple = ~multi
        contrib = np.where(simple & (span > 0.0) & (rate0 > 0.0),
                           rate0 * span, 0.0)
        has_multi = bool(multi.any())
        if has_multi:
            for i in np.nonzero(multi)[0]:
                w_lo, w_hi = lo[i], hi[i]
                contrib[i] = (attachments[i].flow.bytes_between(w_lo, w_hi)
                              if w_hi > w_lo else 0.0)
        port_bytes = np.zeros(self.num_ports)
        port_packets = np.zeros(self.num_ports)
        port_rate = np.zeros(self.num_ports)
        np.add.at(port_bytes, out_ports, contrib)
        np.add.at(port_packets, out_ports, contrib / psize)
        active = (attached <= now) & (now < det)
        if self.tcam._rules:
            rates = np.zeros(n)
            for i in np.nonzero(active)[0]:
                rates[i] = self._effective_rate(attachments[i], now)
        else:
            rates = np.where(active & simple & (seg0 <= now), rate0, 0.0)
            if has_multi:
                for i in np.nonzero(active & multi)[0]:
                    rates[i] = attachments[i].flow.rate_at(now)
        np.add.at(port_rate, out_ports, rates)
        return [PortStats(port, now, float(port_bytes[port]),
                          float(port_packets[port]), float(port_rate[port]))
                for port in port_list]

    def read_rule_stats(self, rule_id: int) -> RuleStats:
        """Hit counters for one TCAM rule since its installation."""
        rule = self.tcam.get(rule_id)
        now = self.sim.now
        matched_bytes = 0.0
        matched_packets = 0.0
        for attachment in self._attachments:
            if not self._rule_applies(rule, attachment):
                continue
            # Only the highest-priority matching rule counts a flow.
            if self._matching_rule(attachment) is not rule:
                continue
            lo, hi = attachment.window(rule.installed_at, now)
            if hi > lo:
                matched_bytes += attachment.flow.bytes_between(lo, hi)
                matched_packets += attachment.flow.packets_between(lo, hi)
        return RuleStats(rule_id, now, matched_bytes, matched_packets)

    # ------------------------------------------------------------------
    # Probing (packet sampling)
    # ------------------------------------------------------------------
    def sample_packets(self, fil: Filter, max_packets: int = 16) -> List[Packet]:
        """Materialize up to ``max_packets`` representative packets.

        Sampling is rate-proportional and deterministic: the sample budget
        is split across matching flows by largest-remainder apportionment
        of their current rates, so an elephant contributes many samples
        and a mouse few or none — exactly how a hardware sampler's output
        is distributed.  Equal-rate flows split the budget evenly (breadth
        for scan/flood detectors); a dominant flow crowds the batch (rate
        concentration for entropy/volume detectors).
        """
        now = self.sim.now
        active = [a for a in self._attachments if a.active_at(now)
                  and self._effective_rate(a, now) > 0
                  and fil.matches_key(a.flow.key,
                                      tcp_flags=a.flow.default_tcp_flags)]
        active.sort(key=lambda a: (-a.flow.rate_at(now), a.flow.key.src_ip,
                                   a.flow.key.src_port))
        if not active:
            return []
        if len(active) >= max_packets:
            # More flows than budget: one sample each for the heaviest.
            return [a.flow.sample_packet(now) for a in active[:max_packets]]
        total_rate = sum(self._effective_rate(a, now) for a in active)
        shares = [self._effective_rate(a, now) / total_rate * max_packets
                  for a in active]
        counts = [int(share) for share in shares]
        remainders = sorted(range(len(active)),
                            key=lambda i: shares[i] - counts[i],
                            reverse=True)
        leftover = max_packets - sum(counts)
        for index in remainders[:leftover]:
            counts[index] += 1
        packets: List[Packet] = []
        for attachment, count in zip(active, counts):
            packets.extend(attachment.flow.sample_packet(now)
                           for _ in range(count))
        return packets

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_flows(self) -> List[Flow]:
        now = self.sim.now
        return [a.flow for a in self._attachments if a.active_at(now)]

    def ports_with_traffic(self) -> List[int]:
        now = self.sim.now
        return sorted({a.out_port for a in self._attachments
                       if a.active_at(now) and a.flow.rate_at(now) > 0})

    def refresh_fabric_demand(self) -> None:
        """Re-derive fabric demand from current flow rates.

        Flow rates can change behind the ASIC's back (workload churn calls
        ``Flow.set_rate`` directly), so meters are refreshed lazily before
        utilization reads.
        """
        now = self.sim.now
        demand = sum(self._effective_rate(a, now) for a in self._attachments
                     if a.active_at(now))
        delta = demand - self.fabric.demand
        if delta > 0:
            self.fabric.add_demand(delta)
        elif delta < 0:
            self.fabric.remove_demand(-delta)
