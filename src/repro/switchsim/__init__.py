"""Switch emulator: ASIC, TCAM, PCIe bus, management CPU, drivers."""

from repro.switchsim.asic import Asic, PortStats, RuleStats
from repro.switchsim.chassis import (
    ACCTON_AS5712,
    ACCTON_AS7712,
    APS_BF2556X,
    ARISTA_7280QRA,
    PCIE_UNIT_BPS,
    PLATFORMS,
    R_PCIE,
    R_RAM,
    R_TCAM,
    R_VCPU,
    RESOURCE_TYPES,
    Switch,
    SwitchFleet,
    SwitchModel,
)
from repro.switchsim.cpu import (
    CONTEXT_SWITCH_COST_S,
    ManagementCpu,
    estimate_invocation_load,
)
from repro.switchsim.pcie import (
    BYTES_PER_COUNTER,
    BYTES_PER_SAMPLE,
    PcieBus,
)
from repro.switchsim.stratum import (
    EosSdkDriver,
    StratumDriver,
    SwitchDriver,
    driver_for,
)
from repro.switchsim.tcam import (
    FORWARDING,
    MONITORING,
    RuleAction,
    Tcam,
    TcamRule,
)

__all__ = [
    "Asic", "PortStats", "RuleStats",
    "ACCTON_AS5712", "ACCTON_AS7712", "APS_BF2556X", "ARISTA_7280QRA",
    "PCIE_UNIT_BPS", "PLATFORMS",
    "R_PCIE", "R_RAM", "R_TCAM", "R_VCPU", "RESOURCE_TYPES",
    "Switch", "SwitchFleet", "SwitchModel",
    "CONTEXT_SWITCH_COST_S", "ManagementCpu", "estimate_invocation_load",
    "BYTES_PER_COUNTER", "BYTES_PER_SAMPLE", "PcieBus",
    "EosSdkDriver", "StratumDriver", "SwitchDriver", "driver_for",
    "FORWARDING", "MONITORING", "RuleAction", "Tcam", "TcamRule",
]
