"""Ternary content-addressable memory (TCAM) model.

The TCAM holds prioritized match/action rules.  Following iSTAMP (cited in
SII-B-b), the table is *divided* between a forwarding region and a
monitoring region so that FARM's monitoring rules can be rearranged without
perturbing switching behaviour; the soil owns the division and may resize it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import TcamError
from repro.net.filters import Filter
from repro.net.packet import FlowKey, Packet
from repro.obs.metrics import MetricsRegistry

FORWARDING = "forwarding"
MONITORING = "monitoring"


class RuleAction(Enum):
    """What a matching rule does to traffic."""

    FORWARD = "forward"
    DROP = "drop"
    RATE_LIMIT = "rate_limit"
    MIRROR = "mirror"
    COUNT = "count"
    SET_QOS = "set_qos"


@dataclass
class TcamRule:
    """A single match/action entry.

    ``pattern`` is a :class:`~repro.net.filters.Filter`; higher ``priority``
    wins.  ``params`` carries action arguments (e.g. a rate limit in B/s or
    a QoS class).  The install time anchors the rule's traffic counters.
    """

    pattern: Filter
    action: RuleAction = RuleAction.COUNT
    priority: int = 0
    params: Dict[str, object] = field(default_factory=dict)
    region: str = MONITORING
    rule_id: int = -1
    installed_at: float = 0.0

    def matches(self, packet: Packet) -> bool:
        return self.pattern.matches(packet)

    def matches_key(self, key: FlowKey) -> bool:
        return self.pattern.matches_key(key)


class Tcam:
    """A divided TCAM with priority matching.

    Capacity is in *entries*.  ``monitoring_share`` of the capacity is
    reserved for monitoring rules; the remainder for forwarding.  Either
    region rejects installs past its share — FARM never steals forwarding
    space (SII-B-b: "the switching behavior is not affected").
    """

    def __init__(self, capacity: int, monitoring_share: float = 0.25,
                 registry: Optional[MetricsRegistry] = None,
                 labels: Optional[Mapping[str, Any]] = None) -> None:
        if capacity <= 0:
            raise TcamError(f"TCAM capacity must be positive: {capacity}")
        if not 0.0 <= monitoring_share <= 1.0:
            raise TcamError(f"monitoring share out of range: {monitoring_share}")
        self.capacity = capacity
        self._monitoring_capacity = int(capacity * monitoring_share)
        self._rules: Dict[int, TcamRule] = {}
        self._ids = itertools.count(1)
        self._dirty = True
        self._sorted: List[TcamRule] = []
        self.metrics = registry or MetricsRegistry()
        base = dict(labels) if labels else {}
        self._g_rules = {
            region: self.metrics.gauge(
                "farm_tcam_rules", "Installed TCAM rules per region.",
                labels={**base, "region": region})
            for region in (FORWARDING, MONITORING)}

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    @property
    def monitoring_capacity(self) -> int:
        return self._monitoring_capacity

    @property
    def forwarding_capacity(self) -> int:
        return self.capacity - self._monitoring_capacity

    def used(self, region: Optional[str] = None) -> int:
        if region is None:
            return len(self._rules)
        return sum(1 for rule in self._rules.values() if rule.region == region)

    def available(self, region: str) -> int:
        cap = (self._monitoring_capacity if region == MONITORING
               else self.forwarding_capacity)
        return cap - self.used(region)

    def resize_monitoring(self, new_share: float) -> None:
        """Rebalance the division; rejects shrinking below current usage."""
        if not 0.0 <= new_share <= 1.0:
            raise TcamError(f"monitoring share out of range: {new_share}")
        new_monitoring = int(self.capacity * new_share)
        if self.used(MONITORING) > new_monitoring:
            raise TcamError(
                f"cannot shrink monitoring region to {new_monitoring}: "
                f"{self.used(MONITORING)} rules installed")
        if self.used(FORWARDING) > self.capacity - new_monitoring:
            raise TcamError(
                f"cannot grow monitoring region to {new_monitoring}: "
                f"{self.used(FORWARDING)} forwarding rules installed")
        self._monitoring_capacity = new_monitoring

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def install(self, rule: TcamRule, now: float = 0.0) -> int:
        """Install a rule; returns its id.  Raises on a full region."""
        if rule.region not in (FORWARDING, MONITORING):
            raise TcamError(f"unknown TCAM region: {rule.region!r}")
        if self.available(rule.region) <= 0:
            raise TcamError(
                f"TCAM {rule.region} region full "
                f"({self.used(rule.region)} entries)")
        rule.rule_id = next(self._ids)
        rule.installed_at = now
        self._rules[rule.rule_id] = rule
        self._dirty = True
        self._g_rules[rule.region].set(self.used(rule.region))
        return rule.rule_id

    def remove(self, rule_id: int) -> TcamRule:
        """Remove by id; returns the removed rule."""
        try:
            rule = self._rules.pop(rule_id)
        except KeyError:
            raise TcamError(f"no TCAM rule with id {rule_id}") from None
        self._dirty = True
        self._g_rules[rule.region].set(self.used(rule.region))
        return rule

    def remove_matching(self, pattern: Filter) -> List[TcamRule]:
        """Remove every rule whose pattern equals ``pattern`` exactly."""
        doomed = [rid for rid, rule in self._rules.items()
                  if rule.pattern == pattern]
        return [self.remove(rid) for rid in doomed]

    def get(self, rule_id: int) -> TcamRule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise TcamError(f"no TCAM rule with id {rule_id}") from None

    def find(self, pattern: Filter) -> Optional[TcamRule]:
        """The highest-priority rule with exactly this pattern, if any."""
        candidates = [rule for rule in self._rules.values()
                      if rule.pattern == pattern]
        if not candidates:
            return None
        return max(candidates, key=lambda rule: (rule.priority, -rule.rule_id))

    def rules(self, region: Optional[str] = None) -> List[TcamRule]:
        """All rules, optionally restricted to a region, by priority desc."""
        self._ensure_sorted()
        if region is None:
            return list(self._sorted)
        return [rule for rule in self._sorted if rule.region == region]

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _ensure_sorted(self) -> None:
        if self._dirty:
            # Ties broken by id: earlier-installed wins, like real TCAMs
            # where position decides among equal priorities.
            self._sorted = sorted(self._rules.values(),
                                  key=lambda r: (-r.priority, r.rule_id))
            self._dirty = False

    def lookup(self, packet: Packet) -> Optional[TcamRule]:
        """First (highest-priority) rule matching the packet."""
        self._ensure_sorted()
        for rule in self._sorted:
            if rule.matches(packet):
                return rule
        return None

    def lookup_key(self, key: FlowKey) -> Optional[TcamRule]:
        """First rule matching a bare flow key (no flags)."""
        self._ensure_sorted()
        for rule in self._sorted:
            if rule.matches_key(key):
                return rule
        return None

    def matching_rules(self, key: FlowKey) -> List[TcamRule]:
        """All rules (priority desc) matching a flow key."""
        self._ensure_sorted()
        return [rule for rule in self._sorted if rule.matches_key(key)]
