"""PCIe bus model between the management CPU and the ASIC.

SVI-E-a: "The PCIe bus capacity for polling traffic statistics is limited to
8 Mbps on both tested switches while their ASICs support 100 Gbps (i.e., a
1:12500 ratio)."  Every statistics poll and packet sample crosses this bus,
making it *the* bottleneck that polling aggregation exists to relieve.

The model charges each transfer a size (bytes) and computes its latency from
queueing-theoretic congestion: latency grows as offered load approaches
capacity and transfers stall once the bus saturates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import SwitchError
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.resources import CapacityMeter

#: Paper-measured polling capacity: 8 Mbps = 1e6 bytes/s.
DEFAULT_POLL_CAPACITY_BPS = 1e6

#: Bytes transferred per polled counter (compact batched counter DMA).
#: At 8 B, polling all 54 ports of an AS5712 every 1 ms moves 432 KB/s —
#: inside the 8 Mbps (1 MB/s) budget with headroom, so a single 1 ms-
#: accuracy HH seed works (SVI-C) while dozens of seeds polling distinct
#: subjects still congest the bus (Fig. 8).
BYTES_PER_COUNTER = 8

#: Bytes transferred per sampled packet (truncated header sample).
BYTES_PER_SAMPLE = 256

#: Fixed per-transaction setup latency (doorbell + DMA setup).
TRANSACTION_OVERHEAD_S = 10e-6


@dataclass
class TransferRecord:
    """One completed bus transaction (kept for diagnostics/benchmarks)."""

    time: float
    nbytes: int
    latency: float
    kind: str


class PcieBus:
    """Shared management-path bus with explicit capacity accounting.

    Two views are maintained:

    * **standing demand** — periodic pollers register their steady-state
      byte rate; the meter's oversubscription is what Fig. 8 plots.
    * **per-transfer latency** — individual transactions are charged a
      latency that includes an M/M/1-style congestion factor, so seed
      detection latency degrades gracefully as the bus fills up.
    """

    def __init__(self, sim: Simulator,
                 poll_capacity_bps: float = DEFAULT_POLL_CAPACITY_BPS,
                 name: str = "pcie",
                 registry: Optional[MetricsRegistry] = None,
                 labels: Optional[Mapping[str, Any]] = None) -> None:
        self.sim = sim
        self.name = name
        self.meter = CapacityMeter(sim, poll_capacity_bps,
                                   name=f"{name}.poll")
        self._transfers: List[TransferRecord] = []
        self._standing: Dict[str, float] = {}
        self.metrics = registry or MetricsRegistry(clock=lambda: sim.now)
        self._m_bytes = self.metrics.counter(
            "farm_pcie_bytes_total",
            "Bytes moved across the management PCIe bus.", labels=labels)
        self._m_transfers = self.metrics.counter(
            "farm_pcie_transfers_total",
            "Completed PCIe transactions.", labels=labels)
        self._g_demand = self.metrics.gauge(
            "farm_pcie_standing_demand_bps",
            "Registered standing polling demand in bytes/s.", labels=labels)

    # -- legacy counter attributes (now registry-backed) -------------------
    @property
    def total_bytes(self) -> float:
        return float(self._m_bytes.value)

    # ------------------------------------------------------------------
    # Standing (periodic) demand registration
    # ------------------------------------------------------------------
    def register_poller(self, key: str, rate_bps: float) -> None:
        """Declare a periodic poller consuming ``rate_bps`` bytes/s.

        Re-registering under the same key replaces the old rate (seeds
        adjust their polling periods dynamically).
        """
        if rate_bps < 0:
            raise SwitchError(f"poller rate must be non-negative: {rate_bps}")
        old = self._standing.get(key, 0.0)
        if rate_bps > old:
            self.meter.add_demand(rate_bps - old)
        elif rate_bps < old:
            self.meter.remove_demand(old - rate_bps)
        self._standing[key] = rate_bps
        self._g_demand.set(self.standing_demand_bps)

    def unregister_poller(self, key: str) -> None:
        old = self._standing.pop(key, 0.0)
        if old:
            self.meter.remove_demand(old)
        self._g_demand.set(self.standing_demand_bps)

    @property
    def standing_demand_bps(self) -> float:
        return sum(self._standing.values())

    @property
    def oversubscription(self) -> float:
        """Offered/available; > 1 means the bus cannot keep up (Fig. 8)."""
        return self.meter.oversubscription

    @property
    def saturated(self) -> bool:
        return self.meter.saturated

    # ------------------------------------------------------------------
    # Individual transfers
    # ------------------------------------------------------------------
    def transfer_latency(self, nbytes: int) -> float:
        """Latency for moving ``nbytes`` across the bus *right now*.

        Base service time is ``nbytes / capacity``; a congestion factor
        ``1 / (1 - rho)`` (capped) models queueing behind standing pollers.
        """
        if nbytes < 0:
            raise SwitchError(f"transfer size must be non-negative: {nbytes}")
        capacity = self.meter.capacity
        service = nbytes / capacity
        rho = min(self.meter.oversubscription, 0.99)
        congestion = 1.0 / (1.0 - rho) if rho < 0.99 else 100.0
        return TRANSACTION_OVERHEAD_S + service * congestion

    def transfer(self, nbytes: int, kind: str = "poll") -> float:
        """Execute a transfer; returns its latency and records it."""
        latency = self.transfer_latency(nbytes)
        self._m_bytes.inc(nbytes)
        self._m_transfers.inc()
        self._transfers.append(
            TransferRecord(self.sim.now, nbytes, latency, kind))
        return latency

    def poll_counters(self, num_counters: int) -> float:
        """Transfer latency for polling ``num_counters`` statistics."""
        return self.transfer(num_counters * BYTES_PER_COUNTER, kind="poll")

    def sample_packets(self, num_samples: int) -> float:
        """Transfer latency for moving ``num_samples`` packet samples up."""
        return self.transfer(num_samples * BYTES_PER_SAMPLE, kind="sample")

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def transfers(self) -> List[TransferRecord]:
        return list(self._transfers)

    def mean_transfer_latency(self) -> float:
        if not self._transfers:
            return 0.0
        return sum(t.latency for t in self._transfers) / len(self._transfers)
