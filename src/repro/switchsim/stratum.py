"""Driver abstraction between the control plane and the ASIC ([IND]).

FARM implements two drivers (SV-A-a): one for Stratum (ONL switches) and one
for Arista's EOS SDK.  Both expose the same interface; the soil is written
against :class:`SwitchDriver` only, which is what makes FARM deployable
across vendors.  Every operation crosses the PCIe bus and returns
``(result, latency)`` so callers can schedule delivery at the right time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SwitchError
from repro.net.filters import Filter
from repro.net.packet import Packet
from repro.switchsim.asic import PortStats, RuleStats
from repro.switchsim.chassis import Switch
from repro.switchsim.tcam import TcamRule


class SwitchDriver:
    """Common driver interface (modeled on Stratum's P4Runtime services)."""

    #: Extra software latency added by the driver stack per call.
    CALL_OVERHEAD_S = 20e-6

    def __init__(self, switch: Switch) -> None:
        self.switch = switch
        self.calls = 0

    # ------------------------------------------------------------------
    # Statistics polling
    # ------------------------------------------------------------------
    def read_port_counters(
            self, ports: Optional[Sequence[int]] = None,
    ) -> Tuple[List[PortStats], float]:
        """Poll port counters; returns (stats, PCIe+driver latency).

        ``ports=None`` reads every port in one batched transaction — this
        batching is exactly the aggregation lever the soil exploits.
        """
        self.calls += 1
        if ports is None:
            ports = range(self.switch.asic.num_ports)
        else:
            ports = list(ports)
        # One array pass over the attachment table instead of a per-port
        # scan; bit-identical to the scalar loop (see Asic docstring).
        stats = self.switch.asic.read_port_stats_batch(ports)
        latency = self.switch.pcie.poll_counters(len(stats))
        return stats, latency + self.CALL_OVERHEAD_S

    def read_rule_counters(
            self, rule_ids: Sequence[int]) -> Tuple[List[RuleStats], float]:
        """Poll TCAM rule hit counters."""
        self.calls += 1
        stats = [self.switch.asic.read_rule_stats(rid) for rid in rule_ids]
        latency = self.switch.pcie.poll_counters(len(stats))
        return stats, latency + self.CALL_OVERHEAD_S

    # ------------------------------------------------------------------
    # Packet sampling (probing)
    # ------------------------------------------------------------------
    def sample_packets(self, fil: Filter,
                       max_packets: int = 16) -> Tuple[List[Packet], float]:
        """Pull packet samples matching ``fil`` up to the CPU."""
        self.calls += 1
        packets = self.switch.asic.sample_packets(fil, max_packets)
        latency = self.switch.pcie.sample_packets(max(len(packets), 1))
        return packets, latency + self.CALL_OVERHEAD_S

    # ------------------------------------------------------------------
    # Table management (reactions)
    # ------------------------------------------------------------------
    def write_table_entry(self, rule: TcamRule) -> Tuple[int, float]:
        """Install a TCAM rule; returns (rule id, latency)."""
        self.calls += 1
        rule_id = self.switch.tcam.install(rule, now=self.switch.sim.now)
        latency = self.switch.pcie.transfer(128, kind="table_write")
        return rule_id, latency + self.CALL_OVERHEAD_S

    def delete_table_entry(self, rule_id: int) -> Tuple[TcamRule, float]:
        """Remove a TCAM rule by id."""
        self.calls += 1
        rule = self.switch.tcam.remove(rule_id)
        latency = self.switch.pcie.transfer(64, kind="table_delete")
        return rule, latency + self.CALL_OVERHEAD_S

    def get_table_entry(self, fil: Filter) -> Optional[TcamRule]:
        """Look up an installed rule by exact pattern (no bus crossing:
        the driver caches the table shadow like Stratum does)."""
        return self.switch.tcam.find(fil)


class StratumDriver(SwitchDriver):
    """Stratum/P4Runtime driver for ONL platforms (Tofino, Accton)."""

    CALL_OVERHEAD_S = 20e-6

    def __init__(self, switch: Switch) -> None:
        if switch.model.os != "ONL":
            raise SwitchError(
                f"StratumDriver requires an ONL platform, got {switch.model.os}")
        super().__init__(switch)


class EosSdkDriver(SwitchDriver):
    """Arista EOS SDK driver; slightly heavier per-call software stack."""

    CALL_OVERHEAD_S = 35e-6

    def __init__(self, switch: Switch) -> None:
        if switch.model.os != "EOS":
            raise SwitchError(
                f"EosSdkDriver requires an EOS platform, got {switch.model.os}")
        super().__init__(switch)


def driver_for(switch: Switch) -> SwitchDriver:
    """Pick the right driver for a platform, like FARM's deployment does."""
    if switch.model.os == "EOS":
        return EosSdkDriver(switch)
    return StratumDriver(switch)
