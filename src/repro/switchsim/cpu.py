"""Management-CPU model.

Switches in SVI-A carry commodity x86 CPUs (Xeon 8-core on the Tofino boxes,
Atom C2538 quad-core on the Accton AS5712/AS7712).  Seeds, the soil, and
baseline agents run here.  The model accounts:

* **standing load** — continuous work registered as a fraction of one core
  (CPU "load" in the paper's figures is reported in percent of one core and
  can exceed 100% on multi-core parts, cf. Fig. 6c's ~350%);
* **per-invocation work** — CPU-seconds charged per event (a seed handling
  one poll, an sFlow agent forwarding a sample);
* **context-switch overhead** — a per-entity, per-invocation tax that only
  applies to *process*-based entities; this is what makes 50 parallel ML
  seeds melt the CPU in Fig. 6c while thread-based seeds in Fig. 9 stay flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import SwitchError
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator

#: CPU-seconds consumed by one context switch (generous for an Atom-class
#: part with cold caches; the paper's figures imply switches are expensive).
CONTEXT_SWITCH_COST_S = 30e-6


@dataclass
class LoadSample:
    time: float
    load_percent: float


class ManagementCpu:
    """Load accounting for the switch's local control-plane CPU."""

    def __init__(self, sim: Simulator, num_cores: int = 4,
                 name: str = "cpu",
                 registry: Optional[MetricsRegistry] = None,
                 labels: Optional[Mapping[str, Any]] = None) -> None:
        if num_cores <= 0:
            raise SwitchError(f"core count must be positive: {num_cores}")
        self.sim = sim
        self.num_cores = num_cores
        self.name = name
        self._standing: Dict[str, float] = {}  # key -> fraction of one core
        self._work_integral = 0.0  # cpu-seconds of one-off work
        self._last_accumulate = sim.now
        self._standing_integral = 0.0  # integral of standing load (core*s)
        self._history: List[LoadSample] = []
        # Registry counters mirror the two integrals with the identical
        # float-add sequence, so load recomputed from the registry matches
        # mean_demand_percent() bit-for-bit (the Fig. 5 cross-check).
        self.metrics = registry or MetricsRegistry(clock=lambda: sim.now)
        self._m_work = self.metrics.counter(
            "farm_cpu_work_seconds_total",
            "One-off CPU-seconds charged (incl. context-switch tax).",
            labels=labels)
        self._m_standing_s = self.metrics.counter(
            "farm_cpu_standing_core_seconds_total",
            "Integral of standing load over sim time, in core-seconds.",
            labels=labels)
        self._m_ctx = self.metrics.counter(
            "farm_cpu_context_switches_total",
            "Context switches charged to the management CPU.", labels=labels)
        self._g_standing = self.metrics.gauge(
            "farm_cpu_standing_cores",
            "Current standing load in cores.", labels=labels)

    # ------------------------------------------------------------------
    # Standing load
    # ------------------------------------------------------------------
    def set_standing_load(self, key: str, core_fraction: float) -> None:
        """Register continuous load under ``key`` (replaces prior value)."""
        if core_fraction < 0:
            raise SwitchError(f"load must be non-negative: {core_fraction}")
        self._accumulate()
        self._standing[key] = core_fraction
        self._g_standing.set(self.standing_load_cores)
        self._history.append(LoadSample(self.sim.now, self.load_percent))

    def clear_standing_load(self, key: str) -> None:
        self._accumulate()
        self._standing.pop(key, None)
        self._g_standing.set(self.standing_load_cores)

    def clear_all_standing(self) -> None:
        """Drop every standing-load registration at once (power failure:
        nothing survives on the management CPU)."""
        self._accumulate()
        self._standing.clear()
        self._g_standing.set(0.0)
        self._history.append(LoadSample(self.sim.now, self.load_percent))

    @property
    def standing_load_cores(self) -> float:
        return sum(self._standing.values())

    # ------------------------------------------------------------------
    # One-off work
    # ------------------------------------------------------------------
    def charge_work(self, cpu_seconds: float, context_switches: int = 0) -> float:
        """Charge ``cpu_seconds`` of computation (+ context switches).

        Returns the *wall-clock completion time* of the work given current
        contention: work slows down proportionally once total demand
        exceeds the core count.
        """
        if cpu_seconds < 0:
            raise SwitchError(f"work must be non-negative: {cpu_seconds}")
        total = cpu_seconds + context_switches * CONTEXT_SWITCH_COST_S
        self._work_integral += total
        self._m_work.inc(total)
        if context_switches:
            self._m_ctx.inc(context_switches)
        slowdown = max(1.0, self.standing_load_cores / self.num_cores)
        return total * slowdown

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _accumulate(self) -> None:
        dt = self.sim.now - self._last_accumulate
        if dt > 0:
            delta = self.standing_load_cores * dt
            self._standing_integral += delta
            self._m_standing_s.inc(delta)
        self._last_accumulate = self.sim.now

    @property
    def load_percent(self) -> float:
        """Instantaneous standing load, percent of one core (can be >100)."""
        return self.standing_load_cores * 100.0

    def mean_demand_percent(self, window: float = 0.0) -> float:
        """Time-averaged *offered* load in percent (may exceed the cores:
        demand beyond capacity means work queues up and deadlines slip).
        """
        self._accumulate()
        horizon = self.sim.now if window == 0.0 else window
        if horizon <= 0:
            return self.load_percent
        mean_cores = (self._standing_integral + self._work_integral) / horizon
        return mean_cores * 100.0

    def mean_load_percent(self, window: float = 0.0) -> float:
        """Time-averaged *utilization* in percent, saturating at the core
        count — a 4-core part cannot report more than 400% (what Fig. 6's
        plateaus show).  Use :meth:`mean_demand_percent` for raw demand.
        """
        return min(self.mean_demand_percent(window),
                   self.num_cores * 100.0)

    @property
    def saturated_demand(self) -> bool:
        """Offered load exceeds total capacity (deadlines will slip)."""
        return self.mean_demand_percent() > self.num_cores * 100.0

    @property
    def overloaded(self) -> bool:
        """True when standing demand alone exceeds all cores."""
        return self.standing_load_cores > self.num_cores

    def history(self) -> List[LoadSample]:
        return list(self._history)


def estimate_invocation_load(invocations_per_second: float,
                             cpu_seconds_per_invocation: float,
                             as_process: bool = False) -> float:
    """Steady-state core fraction for a periodic activity.

    ``as_process`` adds two context switches per invocation (in and out),
    the cost that separates Fig. 9's process curve from its thread curve.
    """
    if invocations_per_second < 0 or cpu_seconds_per_invocation < 0:
        raise SwitchError("rates and costs must be non-negative")
    per_invocation = cpu_seconds_per_invocation
    if as_process:
        per_invocation += 2 * CONTEXT_SWITCH_COST_S
    return invocations_per_second * per_invocation
