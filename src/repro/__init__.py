"""FARM: comprehensive data center network monitoring and management.

Reproduction of Graf et al., ICDCS 2024.  The most common entry points
are re-exported here; substrates live in their subpackages:

>>> from repro import FarmDeployment
>>> from repro.tasks import make_heavy_hitter_task
>>> farm = FarmDeployment()
>>> farm.submit(make_heavy_hitter_task())  # doctest: +SKIP
"""

from repro.core.deployment import FarmDeployment
from repro.core.harvester import Harvester
from repro.core.task import MachineConfig, TaskDefinition
from repro.obs import Observability

__version__ = "1.0.0"

__all__ = [
    "FarmDeployment",
    "Harvester",
    "MachineConfig",
    "Observability",
    "TaskDefinition",
    "__version__",
]
