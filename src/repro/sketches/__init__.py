"""Probabilistic sketches for data-plane-style monitoring.

SVIII lists "the integration of sketches into FARM" as future work; this
subpackage implements it: classic streaming sketches with accuracy
guarantees (Count-Min [49]-style frequency estimation, HyperLogLog
distinct counting as used by super-spreader detectors [13][48], and a
sliding-window rate estimator), exposed to Almanac seeds as builtins via
:func:`install_sketch_builtins`.

Sketches let a seed track per-flow state in bounded memory: a
heavy-hitter seed can count bytes per 5-tuple in a Count-Min sketch
instead of an exact map, trading a small, *bounded* overestimate for O(1)
memory — the resource model's RAM constraint becomes meaningful.
"""

from repro.sketches.countmin import CountMinSketch
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.window import SlidingWindowCounter
from repro.sketches.almanac_bridge import install_sketch_builtins

__all__ = [
    "CountMinSketch",
    "HyperLogLog",
    "SlidingWindowCounter",
    "install_sketch_builtins",
]
