"""HyperLogLog: distinct counting in O(2^p) registers.

Standard-error ~ 1.04 / sqrt(m) with ``m = 2^precision`` registers; the
super-spreader and port-scan detectors use it to count distinct contacts
per source in constant memory (the BeauCoup/OpenSketch family's core
primitive).
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.errors import FarmError


def _hash64(value: Hashable) -> int:
    """Deterministic 64-bit scramble of Python's hash (which is already
    salted per-type but too structured for register selection)."""
    h = hash(value) & 0xFFFFFFFFFFFFFFFF
    h = ((h ^ (h >> 33)) * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    h = ((h ^ (h >> 33)) * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    return h ^ (h >> 33)


class HyperLogLog:
    """Flajolet et al.'s HLL with the standard bias correction."""

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 18:
            raise FarmError(f"precision must be in [4, 18]: {precision}")
        self.precision = precision
        self.num_registers = 1 << precision
        self._registers = bytearray(self.num_registers)
        if self.num_registers >= 128:
            self._alpha = 0.7213 / (1 + 1.079 / self.num_registers)
        elif self.num_registers == 64:
            self._alpha = 0.709
        elif self.num_registers == 32:
            self._alpha = 0.697
        else:
            self._alpha = 0.673

    def add(self, value: Hashable) -> None:
        digest = _hash64(value)
        register = digest >> (64 - self.precision)
        remaining = digest << self.precision & 0xFFFFFFFFFFFFFFFF
        # rank = position of the leftmost 1-bit in the remaining 64-p bits
        rank = 1
        bit = 1 << 63
        while rank <= 64 - self.precision and not remaining & bit:
            remaining <<= 1
            remaining &= 0xFFFFFFFFFFFFFFFF
            rank += 1
        if rank > self._registers[register]:
            self._registers[register] = rank

    def count(self) -> float:
        """Cardinality estimate with small/large-range corrections."""
        m = self.num_registers
        raw = self._alpha * m * m / sum(
            2.0 ** -register for register in self._registers)
        if raw <= 2.5 * m:
            zeros = self._registers.count(0)
            if zeros:
                return m * math.log(m / zeros)  # linear counting
        if raw > (1 << 32) / 30.0:
            return -(1 << 32) * math.log(1.0 - raw / (1 << 32))
        return raw

    def merge(self, other: "HyperLogLog") -> None:
        """Union of two HLLs with identical precision (cross-switch merge,
        the network-wide super-spreader use case)."""
        if self.precision != other.precision:
            raise FarmError("can only merge HLLs of equal precision")
        for index in range(self.num_registers):
            if other._registers[index] > self._registers[index]:
                self._registers[index] = other._registers[index]

    def clear(self) -> None:
        for index in range(self.num_registers):
            self._registers[index] = 0

    def standard_error(self) -> float:
        return 1.04 / math.sqrt(self.num_registers)

    @property
    def memory_bytes(self) -> int:
        return self.num_registers
