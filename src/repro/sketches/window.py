"""Sliding-window rate estimation in O(buckets) memory.

Seeds estimating "bytes in the last W seconds" cannot keep per-event
history; the classic bucketed sliding window (a simplification of
Datar et al.'s exponential histograms) trades a ``1/num_buckets``
relative window error for constant memory.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import FarmError


class SlidingWindowCounter:
    """Sum of values observed in the trailing ``window_s`` seconds."""

    def __init__(self, window_s: float, num_buckets: int = 10) -> None:
        if window_s <= 0:
            raise FarmError(f"window must be positive: {window_s}")
        if num_buckets < 1:
            raise FarmError(f"need at least one bucket: {num_buckets}")
        self.window_s = window_s
        self.num_buckets = num_buckets
        self.bucket_s = window_s / num_buckets
        # (bucket_index, sum) ring; bucket_index = floor(t / bucket_s)
        self._buckets: List[Tuple[int, float]] = []

    def _evict(self, now: float) -> None:
        horizon = int(now / self.bucket_s) - self.num_buckets
        self._buckets = [(index, value) for index, value in self._buckets
                         if index > horizon]

    def add(self, value: float, now: float) -> None:
        """Record ``value`` at time ``now`` (non-decreasing)."""
        self._evict(now)
        index = int(now / self.bucket_s)
        if self._buckets and self._buckets[-1][0] == index:
            last_index, last_value = self._buckets[-1]
            self._buckets[-1] = (last_index, last_value + value)
        elif self._buckets and self._buckets[-1][0] > index:
            raise FarmError("sliding window requires non-decreasing time")
        else:
            self._buckets.append((index, value))

    def total(self, now: float) -> float:
        """Sum over the trailing window as of ``now``."""
        self._evict(now)
        return sum(value for _index, value in self._buckets)

    def rate(self, now: float) -> float:
        """Average rate (units/second) over the trailing window."""
        return self.total(now) / self.window_s

    def clear(self) -> None:
        self._buckets.clear()

    @property
    def memory_cells(self) -> int:
        return self.num_buckets
