"""Count-Min sketch: frequency estimation in sublinear space.

Guarantees (Cormode & Muthukrishnan): with width ``w = ceil(e / eps)``
and depth ``d = ceil(ln(1 / delta))``, the estimate ``f'`` of a key's
true count ``f`` satisfies ``f <= f' <= f + eps * N`` with probability
at least ``1 - delta``, where ``N`` is the total count inserted.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Tuple

from repro.errors import FarmError

#: Large primes for the pairwise-independent hash family.
_MERSENNE_PRIME = (1 << 61) - 1


class CountMinSketch:
    """A Count-Min sketch over hashable keys with non-negative updates."""

    def __init__(self, epsilon: float = 0.001, delta: float = 0.01,
                 seed: int = 0) -> None:
        if not 0 < epsilon < 1:
            raise FarmError(f"epsilon must be in (0,1): {epsilon}")
        if not 0 < delta < 1:
            raise FarmError(f"delta must be in (0,1): {delta}")
        self.epsilon = epsilon
        self.delta = delta
        self.width = max(1, math.ceil(math.e / epsilon))
        self.depth = max(1, math.ceil(math.log(1.0 / delta)))
        self._rows: List[List[float]] = [
            [0.0] * self.width for _ in range(self.depth)]
        # Pairwise-independent hashes: h_i(x) = (a_i * x + b_i) mod p mod w
        rng = _SplitMix(seed)
        self._hash_params: List[Tuple[int, int]] = [
            (rng.next() % (_MERSENNE_PRIME - 1) + 1,
             rng.next() % _MERSENNE_PRIME)
            for _ in range(self.depth)]
        self.total = 0.0

    # ------------------------------------------------------------------
    def _indices(self, key: Hashable) -> Iterable[int]:
        digest = hash(key) & 0x7FFFFFFFFFFFFFFF
        for a, b in self._hash_params:
            yield ((a * digest + b) % _MERSENNE_PRIME) % self.width

    def update(self, key: Hashable, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the key's count."""
        if amount < 0:
            raise FarmError("Count-Min supports non-negative updates only")
        self.total += amount
        for row, index in zip(self._rows, self._indices(key)):
            row[index] += amount

    def query(self, key: Hashable) -> float:
        """Estimated count: never below the truth, overshoot bounded by
        ``epsilon * total`` w.p. ``1 - delta``."""
        return min(row[index]
                   for row, index in zip(self._rows, self._indices(key)))

    def heavy_keys(self, candidates: Iterable[Hashable],
                   threshold: float) -> List[Hashable]:
        """Candidates whose estimate crosses ``threshold`` (no false
        negatives thanks to one-sided error)."""
        return [key for key in candidates if self.query(key) >= threshold]

    # ------------------------------------------------------------------
    def merge(self, other: "CountMinSketch") -> None:
        """Merge a same-shape sketch (e.g. from another switch) in place."""
        if (self.width, self.depth) != (other.width, other.depth) \
                or self._hash_params != other._hash_params:
            raise FarmError("can only merge identically-configured sketches")
        for mine, theirs in zip(self._rows, other._rows):
            for index in range(self.width):
                mine[index] += theirs[index]
        self.total += other.total

    def clear(self) -> None:
        for row in self._rows:
            for index in range(self.width):
                row[index] = 0.0
        self.total = 0.0

    @property
    def memory_cells(self) -> int:
        """Counter cells held — the bounded-memory selling point."""
        return self.width * self.depth

    def error_bound(self) -> float:
        """Additive overestimate bound that holds w.p. ``1 - delta``."""
        return self.epsilon * self.total


class _SplitMix:
    """Tiny deterministic PRNG (SplitMix64) for hash-parameter seeding."""

    def __init__(self, seed: int) -> None:
        self._state = (seed * 0x9E3779B97F4A7C15 + 1) & 0xFFFFFFFFFFFFFFFF

    def next(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) \
            & 0xFFFFFFFFFFFFFFFF
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return z ^ (z >> 31)
