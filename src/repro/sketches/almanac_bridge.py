"""Exposing sketches to Almanac seeds (the SVIII integration).

:func:`install_sketch_builtins` registers sketch constructors and
operations as soil-wide external programs reachable from Almanac via
builtins, e.g.::

    list cms = cmSketch(0.01, 0.01);
    cmUpdate(cms, p.src_ip, p.size);
    if (cmQuery(cms, p.src_ip) >= threshold) then { ... }

Seeds hold sketches in ordinary ``list`` variables (the interpreter is
dynamically typed); sketch state participates in migration snapshots like
any other machine variable because the sketches are plain Python objects
with by-reference semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.sketches.countmin import CountMinSketch
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.window import SlidingWindowCounter


def sketch_builtins() -> Dict[str, Callable[..., Any]]:
    """The Almanac-callable sketch API."""
    return {
        # Count-Min
        "cmSketch": lambda epsilon=0.001, delta=0.01: CountMinSketch(
            epsilon=float(epsilon), delta=float(delta)),
        "cmUpdate": lambda sketch, key, amount=1: (
            sketch.update(key, float(amount)), sketch)[1],
        "cmQuery": lambda sketch, key: sketch.query(key),
        "cmTotal": lambda sketch: sketch.total,
        "cmClear": lambda sketch: (sketch.clear(), sketch)[1],
        # HyperLogLog
        "hllSketch": lambda precision=12: HyperLogLog(int(precision)),
        "hllAdd": lambda sketch, value: (sketch.add(value), sketch)[1],
        "hllCount": lambda sketch: sketch.count(),
        "hllClear": lambda sketch: (sketch.clear(), sketch)[1],
        # Sliding window
        "swCounter": lambda window_s, buckets=10: SlidingWindowCounter(
            float(window_s), int(buckets)),
        "swAdd": lambda counter, value, now: (
            counter.add(float(value), float(now)), counter)[1],
        "swTotal": lambda counter, now: counter.total(float(now)),
        "swRate": lambda counter, now: counter.rate(float(now)),
    }


def install_sketch_builtins(soil) -> None:
    """Make the sketch API available to every seed deployed on ``soil``.

    The functions become ordinary Almanac builtins for seeds deployed
    *after* the call, in addition to being reachable via ``exec()`` (for
    multi-argument exec calls, pass a list:
    ``exec("cmUpdate", [cms, key, size])``).
    """
    costs = {
        "cmSketch": 5e-6, "cmUpdate": 0.5e-6, "cmQuery": 0.5e-6,
        "cmTotal": 0.1e-6, "cmClear": 2e-6,
        "hllSketch": 5e-6, "hllAdd": 0.3e-6, "hllCount": 20e-6,
        "hllClear": 2e-6,
        "swCounter": 1e-6, "swAdd": 0.2e-6, "swTotal": 0.5e-6,
        "swRate": 0.5e-6,
    }
    for name, fn in sketch_builtins().items():
        soil.extra_builtins[name] = fn
        soil.register_external(
            name, _Variadic(fn), cpu_cost_s=costs.get(name, 1e-6))


class _Variadic:
    """Adapt exec()'s single-argument convention to the sketch API."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, arg: Any) -> Any:
        if arg is None:
            return self.fn()
        if isinstance(arg, list):
            return self.fn(*arg)
        return self.fn(arg)
