"""Fault tolerance for FARM (the SVIII "avenues for future work" item).

Three mechanisms, composable and individually testable:

* **Heartbeats + failure detection** — every soil emits a periodic
  heartbeat on the control bus; the :class:`FaultToleranceManager` marks
  a switch *suspected* after ``miss_limit`` silent periods and only
  *failed* after ``confirm_limit`` (default ``2 * miss_limit``).  The
  grace period keeps a lossy-but-alive control bus (chaos injection,
  congested broker) from triggering spurious failovers: heartbeats are
  deliberately fire-and-forget — silence is the signal — so tolerance
  has to live in the detector, not in retransmission.
* **Checkpointing** — the manager periodically snapshots every deployed
  seed's inner state (the same serialization migration uses).
* **Failover** — when a switch fails, its capacity is removed from the
  placement problem and the optimizer re-places the displaced seeds on
  the survivors, restoring each from its last checkpoint; seeds whose
  only candidate was the failed switch (``place all`` pins) are parked
  until the switch recovers.

Seed-level crash containment lives in :class:`repro.core.soil.Soil` via
``crash_policy`` ("propagate" by default; "restart" re-instantiates a
seed that threw, up to ``max_seed_crashes``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro.core.comm import BusMessage, ControlBus
from repro.core.seeder import Seeder
from repro.errors import DeploymentError
from repro.sim.engine import PeriodicTimer, Simulator

HEARTBEAT_ENDPOINT = "seeder/heartbeats"


@dataclass
class SwitchHealth:
    switch_id: int
    last_heartbeat: float
    missed: int = 0
    suspected: bool = False
    suspected_at: Optional[float] = None
    failed: bool = False
    failed_at: Optional[float] = None
    #: Administratively parked (remediation `quarantine`): excluded from
    #: placement and its heartbeats are ignored until unquarantined.
    quarantined: bool = False
    quarantined_at: Optional[float] = None
    #: After an escalated failover, heartbeats do not auto-recover the
    #: switch until this sim-time — an escalation must stick long enough
    #: for the re-placement to pay off (gray switches keep heartbeating).
    holdoff_until: float = 0.0


class FaultToleranceManager:
    """Watches soils, checkpoints seeds, and drives failover."""

    def __init__(self, seeder: Seeder,
                 heartbeat_interval_s: float = 0.5,
                 miss_limit: int = 3,
                 confirm_limit: Optional[int] = None,
                 checkpoint_interval_s: float = 1.0) -> None:
        if miss_limit < 1:
            raise DeploymentError("miss_limit must be at least 1")
        if confirm_limit is None:
            confirm_limit = 2 * miss_limit
        if confirm_limit < miss_limit:
            raise DeploymentError(
                f"confirm_limit ({confirm_limit}) must be >= miss_limit "
                f"({miss_limit})")
        self.seeder = seeder
        self.sim: Simulator = seeder.sim
        self.bus: ControlBus = seeder.bus
        self.heartbeat_interval_s = heartbeat_interval_s
        self.miss_limit = miss_limit
        self.confirm_limit = confirm_limit
        self.health: Dict[int, SwitchHealth] = {}
        self.checkpoints: Dict[str, Dict[str, Any]] = {}
        #: seed ids displaced by a failure with nowhere to go.
        self.parked_seeds: Set[str] = set()
        # Observability: shared with the bus/seeder registry.
        self.metrics = self.bus.metrics
        self.tracer = self.bus.tracer
        self._m_failovers = self.metrics.counter(
            "farm_ft_failovers_total",
            "Switch failures confirmed and failed over.")
        self._m_recoveries = self.metrics.counter(
            "farm_ft_recoveries_total",
            "Failed switches returned to the pool.")
        self._m_suspicions_raised = self.metrics.counter(
            "farm_ft_suspicions_raised_total",
            "Switches marked suspected after miss_limit silent periods.")
        self._m_suspicions_cleared = self.metrics.counter(
            "farm_ft_suspicions_cleared_total",
            "Suspicions cleared by a late heartbeat (grace period wins).")
        self._g_parked = self.metrics.gauge(
            "farm_ft_parked_seeds",
            "Seeds displaced by failures with nowhere to go.")
        self._m_external_suspicions = self.metrics.counter(
            "farm_ft_external_suspicions_total",
            "Suspicions raised by outside evidence (e.g. alert rules).")
        self._m_quarantines = self.metrics.counter(
            "farm_ft_quarantines_total",
            "Switches administratively parked by remediation.")
        self._m_escalations = self.metrics.counter(
            "farm_ft_escalations_total",
            "Failovers forced by escalated external evidence.")
        self.bus.register(HEARTBEAT_ENDPOINT, self._on_heartbeat)
        self._timers: List[PeriodicTimer] = []
        #: Per-switch received-heartbeat counters, pre-created so the
        #: series exists from t=0 (a rate() over a gray switch must see
        #: the healthy baseline, not start at the first surviving beat).
        self._m_heartbeats: Dict[int, Any] = {}
        for switch_id, soil in seeder.soils.items():
            self.health[switch_id] = SwitchHealth(
                switch_id, last_heartbeat=self.sim.now)
            self._m_heartbeats[switch_id] = self.metrics.counter(
                "farm_ft_heartbeats_total",
                "Heartbeats received, per switch.",
                labels={"switch": str(switch_id)})
            self._timers.append(self.sim.every(
                heartbeat_interval_s, self._emit_heartbeat, switch_id,
                label=f"heartbeat sw{switch_id}",
                cost_key=("ft", switch_id, None, "heartbeat")))
        self._timers.append(self.sim.every(
            heartbeat_interval_s, self._check_health,
            start_after=heartbeat_interval_s * 1.5, label="ft-check",
            cost_key=("ft", None, None, "ft-check")))
        self._timers.append(self.sim.every(
            checkpoint_interval_s, self._checkpoint_all, label="ft-ckpt",
            cost_key=("ft", None, None, "ft-ckpt")))

    # -- legacy counter attributes (now registry-backed) -------------------
    @property
    def failovers_performed(self) -> int:
        return int(self._m_failovers.value)

    @property
    def recoveries_performed(self) -> int:
        return int(self._m_recoveries.value)

    @property
    def suspicions_raised(self) -> int:
        """Suspicions raised without (yet) escalating to failure — the
        lossy-but-alive near misses the grace period absorbs."""
        return int(self._m_suspicions_raised.value)

    @property
    def suspicions_cleared(self) -> int:
        return int(self._m_suspicions_cleared.value)

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def _emit_heartbeat(self, switch_id: int) -> None:
        soil = self.seeder.soils.get(switch_id)
        if soil is None or getattr(soil, "failed", False):
            return  # a failed switch is silent — that is the signal
        self.bus.send(f"soil/{switch_id}", HEARTBEAT_ENDPOINT,
                      {"switch": switch_id, "seeds": soil.num_seeds},
                      size_bytes=96)

    def _on_heartbeat(self, message: BusMessage) -> None:
        payload = message.payload
        health = self.health.get(int(payload["switch"]))
        if health is None:
            return
        counter = self._m_heartbeats.get(health.switch_id)
        if counter is not None:
            counter.inc()
        if health.quarantined:
            # A parked switch keeps talking; we keep not listening.
            return
        health.last_heartbeat = self.sim.now
        health.missed = 0
        if health.suspected:
            # A lossy-but-alive switch: the grace period did its job.
            health.suspected = False
            health.suspected_at = None
            self._m_suspicions_cleared.inc()
            tracer = self.tracer
            if tracer.enabled:
                tracer.instant(f"suspicion-cleared sw{health.switch_id}",
                               track="seeder", cat="fault-tolerance")
        if health.failed:
            if self.sim.now < health.holdoff_until:
                return  # escalated failover: recovery is on hold
            self._handle_recovery(health)

    def _check_health(self) -> None:
        deadline = self.heartbeat_interval_s * 1.5
        for health in self.health.values():
            if health.failed or health.quarantined:
                continue
            if self.sim.now - health.last_heartbeat > deadline:
                health.missed += 1
                health.last_heartbeat = self.sim.now  # count per period
                if (health.missed >= self.miss_limit
                        and not health.suspected):
                    health.suspected = True
                    health.suspected_at = self.sim.now
                    self._m_suspicions_raised.inc()
                    tracer = self.tracer
                    if tracer.enabled:
                        tracer.instant(f"suspected sw{health.switch_id}",
                                       track="seeder", cat="fault-tolerance",
                                       args={"missed": health.missed})
                if health.missed >= self.confirm_limit:
                    self._handle_failure(health)

    def external_suspicion(self, switch_id: int, source: str = "") -> bool:
        """Mark a switch *suspected* on outside evidence (e.g. a firing
        Scarecrow alert).  Evidence only: the suspicion is cleared by the
        next heartbeat like any other, and confirmation still requires
        ``confirm_limit`` silent periods — an alert rule can never fail
        over a healthy switch on its own.  Returns True if the switch
        was newly marked suspected.
        """
        health = self.health.get(switch_id)
        if health is None or health.failed or health.suspected:
            return False
        health.suspected = True
        health.suspected_at = self.sim.now
        self._m_external_suspicions.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"suspected sw{switch_id} (external)",
                           track="seeder", cat="fault-tolerance",
                           args={"source": source})
        return True

    def escalate_failure(self, switch_id: int, source: str = "",
                         recovery_holdoff_s: float = 10.0) -> bool:
        """Promote accumulated outside evidence into a failover *now*.

        This is the remediation engine's big hammer for switches whose
        heartbeats keep trickling through (gray failures): the two-stage
        detector never confirms them, so the caller — who has watched the
        evidence repeat — forces ``_handle_failure`` and holds off
        heartbeat-driven auto-recovery for ``recovery_holdoff_s`` so the
        re-placement isn't immediately undone by the next lucky beat.
        Returns True if a failover was actually performed.
        """
        health = self.health.get(switch_id)
        if health is None or health.failed or health.quarantined:
            return False
        health.holdoff_until = self.sim.now + recovery_holdoff_s
        self._m_escalations.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"escalated sw{switch_id}", track="seeder",
                           cat="fault-tolerance", args={"source": source})
        self._handle_failure(health)
        return True

    # ------------------------------------------------------------------
    # Quarantine (administrative park, driven by remediation)
    # ------------------------------------------------------------------
    def quarantine(self, switch_id: int, source: str = "") -> bool:
        """Park a switch: exclude it from placement, displace its seeds
        to survivors, and ignore its heartbeats until ``unquarantine``.

        Unlike a confirmed failure this never auto-recovers — a switch
        parked on purpose stays parked until the operator (or policy)
        says otherwise.  Returns True if the switch was newly parked.
        """
        health = self.health.get(switch_id)
        if health is None or health.quarantined or health.failed:
            return False
        health.quarantined = True
        health.quarantined_at = self.sim.now
        health.suspected = False
        health.suspected_at = None
        health.missed = 0
        self.seeder.failed_switches.add(switch_id)
        self._m_quarantines.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"quarantine sw{switch_id}", track="seeder",
                           cat="fault-tolerance", args={"source": source})
        self._displace_seeds(switch_id)
        self._redeploy_with_checkpoints()
        return True

    def unquarantine(self, switch_id: int) -> bool:
        """Return a parked switch to the pool and re-place globally."""
        health = self.health.get(switch_id)
        if health is None or not health.quarantined:
            return False
        health.quarantined = False
        health.quarantined_at = None
        health.missed = 0
        health.last_heartbeat = self.sim.now
        self.seeder.failed_switches.discard(switch_id)
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"unquarantine sw{switch_id}", track="seeder",
                           cat="fault-tolerance")
        revived = {seed_id for seed_id in self.parked_seeds
                   if self._can_place_now(seed_id)}
        self.parked_seeds -= revived
        self._g_parked.set(len(self.parked_seeds))
        self._redeploy_with_checkpoints()
        return True

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _checkpoint_all(self) -> None:
        for switch_id, soil in self.seeder.soils.items():
            health = self.health.get(switch_id)
            # Skip powered-off soils AND switches *we* consider failed: a
            # partitioned switch still runs its (now stale) seed copies,
            # and snapshotting those would overwrite the checkpoints the
            # failover restored from.
            if getattr(soil, "failed", False) \
                    or (health is not None
                        and (health.failed or health.quarantined)):
                continue
            for seed_id in list(soil.deployments):
                self.checkpoints[seed_id] = soil.snapshot_seed(seed_id)

    def checkpoint_of(self, seed_id: str) -> Optional[Dict[str, Any]]:
        return self.checkpoints.get(seed_id)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _handle_failure(self, health: SwitchHealth) -> None:
        health.failed = True
        health.failed_at = self.sim.now
        health.suspected = False
        health.suspected_at = None
        switch_id = health.switch_id
        self.seeder.failed_switches.add(switch_id)
        self._m_failovers.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"failover sw{switch_id}", track="seeder",
                           cat="fault-tolerance")
        # Displace the failed switch's seeds: they are gone; the seeder's
        # bookkeeping must reflect that before re-optimizing.  Then
        # re-place everything on the survivors, restoring checkpoints.
        self._displace_seeds(switch_id)
        self._redeploy_with_checkpoints()

    def _displace_seeds(self, switch_id: int) -> None:
        """Evict every seed booked on ``switch_id`` from the seeder's
        bookkeeping; seeds with no surviving candidate are parked."""
        displaced: List = []
        for task in self.seeder.tasks.values():
            for seed in task.seeds:
                if seed.switch == switch_id:
                    seed.switch = None
                    seed.allocation = {}
                    displaced.append(seed)
        for seed in displaced:
            alive = [n for n in seed.candidates
                     if n not in self.seeder.failed_switches]
            if not alive:
                self.parked_seeds.add(seed.seed_id)
        self._g_parked.set(len(self.parked_seeds))

    def _handle_recovery(self, health: SwitchHealth) -> None:
        """A failed switch heartbeats again: return it to the pool.

        Re-placement always runs — the recovered capacity changes the
        optimum even when nothing was parked.  Parked seeds (pinned to
        the dead switch) additionally come back to life here.
        """
        health.failed = False
        health.failed_at = None
        health.missed = 0
        health.holdoff_until = 0.0
        self.seeder.failed_switches.discard(health.switch_id)
        self._m_recoveries.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"recovery sw{health.switch_id}", track="seeder",
                           cat="fault-tolerance")
        revived = {seed_id for seed_id in self.parked_seeds
                   if self._can_place_now(seed_id)}
        self.parked_seeds -= revived
        self._g_parked.set(len(self.parked_seeds))
        self._redeploy_with_checkpoints()

    def _can_place_now(self, seed_id: str) -> bool:
        for task in self.seeder.tasks.values():
            for seed in task.seeds:
                if seed.seed_id == seed_id:
                    return any(n not in self.seeder.failed_switches
                               for n in seed.candidates)
        return False

    def _redeploy_with_checkpoints(self) -> None:
        snapshots = dict(self.checkpoints)
        self.seeder.reoptimize(restore_snapshots=snapshots)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        for timer in self._timers:
            timer.stop()
        self.bus.unregister(HEARTBEAT_ENDPOINT)

    # -- test/ops hooks -----------------------------------------------
    def alive_switches(self) -> List[int]:
        return sorted(h.switch_id for h in self.health.values()
                      if not h.failed and not h.quarantined)

    def suspected_switch_ids(self) -> List[int]:
        return sorted(h.switch_id for h in self.health.values()
                      if h.suspected and not h.failed)

    def failed_switch_ids(self) -> List[int]:
        return sorted(h.switch_id for h in self.health.values() if h.failed)

    def quarantined_switch_ids(self) -> List[int]:
        return sorted(h.switch_id for h in self.health.values()
                      if h.quarantined)


def fail_switch(seeder: Seeder, switch_id: int) -> None:
    """Test/ops helper: silence a switch as a crash would.

    The soil stops heartbeating and processing; deployed seed objects are
    lost (only checkpoints survive), exactly like a power failure.
    """
    seeder.soils[switch_id].power_off()


def recover_switch(seeder: Seeder, switch_id: int) -> None:
    """Bring a previously failed switch back (heartbeats resume)."""
    seeder.soils[switch_id].power_on()
