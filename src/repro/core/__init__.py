"""FARM core runtime: seeds, soil, harvester, seeder, communication."""

from repro.core.chaos import FaultInjector, FaultRule, Partition
from repro.core.fault_tolerance import (
    FaultToleranceManager,
    fail_switch,
    recover_switch,
)
from repro.core.deployment import FarmDeployment
from repro.core.reliable import ReliableEndpoint, RetryPolicy
from repro.core.comm import (
    CommScheme,
    ControlBus,
    ExecutionMode,
    SoilCommConfig,
    seed_soil_cpu_cost,
    seed_soil_latency,
)
from repro.core.harvester import (
    Harvester,
    RecordingHarvester,
    SeedReport,
    ThresholdHarvester,
)
from repro.core.seeder import ActiveTask, ManagedSeed, Seeder
from repro.core.soil import (
    DEFAULT_EVENT_CPU_S,
    SeedDeployment,
    Soil,
)
from repro.core.task import MachineConfig, TaskDefinition

__all__ = [
    "CommScheme", "ControlBus", "ExecutionMode", "SoilCommConfig",
    "seed_soil_cpu_cost", "seed_soil_latency",
    "Harvester", "RecordingHarvester", "SeedReport", "ThresholdHarvester",
    "ActiveTask", "ManagedSeed", "Seeder",
    "DEFAULT_EVENT_CPU_S", "SeedDeployment", "Soil",
    "MachineConfig", "TaskDefinition",
    "FaultToleranceManager", "fail_switch", "recover_switch",
    "FarmDeployment",
    "FaultInjector", "FaultRule", "Partition",
    "ReliableEndpoint", "RetryPolicy",
]
