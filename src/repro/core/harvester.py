"""Harvesters: per-task centralized analyzers (SII-C-a).

A harvester collects what its seeds pre-filter and takes global actions
when seed-local decision making is insufficient.  Subclass and override
:meth:`Harvester.on_seed_report`; use :meth:`send_to_seeds` to push
configuration (thresholds, reaction policies) back down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.comm import BusMessage, ControlBus
from repro.errors import DeploymentError
from repro.sim.engine import Simulator


@dataclass
class SeedReport:
    """One message received from a seed."""

    time: float
    seed_id: str
    switch: int
    value: Any


class Harvester:
    """Base class for task-specific centralized components."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.task_id: Optional[str] = None
        self.sim: Optional[Simulator] = None
        self.bus: Optional[ControlBus] = None
        self._seeder = None
        self.reports: List[SeedReport] = []
        #: Telemetry is fire-and-forget, so a chaotic bus may duplicate
        #: it; reports carry (switch, epoch, rseq) and are deduplicated.
        self._seen_reports: Dict[Tuple[str, int, float], Set[int]] = {}
        # Registry counters are created on attach (that's when the bus —
        # and with it the deployment's registry — becomes known).
        self._m_reports = None
        self._m_duplicates = None
        self.tracer = None

    # -- legacy counter attributes (now registry-backed) -------------------
    @property
    def duplicate_reports(self) -> int:
        return int(self._m_duplicates.value) if self._m_duplicates else 0

    # ------------------------------------------------------------------
    # Lifecycle (called by the seeder)
    # ------------------------------------------------------------------
    def attach(self, sim: Simulator, bus: ControlBus, task_id: str,
               seeder) -> None:
        if self.task_id is not None:
            raise DeploymentError(
                f"harvester {self.name!r} already attached to "
                f"{self.task_id!r}")
        self.sim = sim
        self.bus = bus
        self.task_id = task_id
        self._seeder = seeder
        labels = {"task": task_id}
        self._m_reports = bus.metrics.counter(
            "farm_harvester_reports_total",
            "Seed reports accepted by the harvester.", labels=labels)
        self._m_duplicates = bus.metrics.counter(
            "farm_harvester_duplicates_total",
            "Duplicated seed reports discarded by (epoch, rseq) dedup.",
            labels=labels)
        self.tracer = bus.tracer
        bus.register(f"harvester/{task_id}", self._on_bus_message)
        self.on_attached()

    def detach(self) -> None:
        if self.bus is not None and self.task_id is not None:
            self.bus.unregister(f"harvester/{self.task_id}")
        self.task_id = None
        self._seeder = None

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    def _on_bus_message(self, message: BusMessage) -> None:
        payload = message.payload
        if not isinstance(payload, dict) or "value" not in payload:
            return
        rseq = payload.get("rseq")
        if rseq is not None:
            key = (str(payload.get("seed_id", "?")),
                   int(payload.get("switch", -1)),
                   float(payload.get("epoch", 0.0)))
            seen = self._seen_reports.setdefault(key, set())
            if rseq in seen:
                self._m_duplicates.inc()
                return
            seen.add(rseq)
        report = SeedReport(
            time=self.sim.now if self.sim else 0.0,
            seed_id=str(payload.get("seed_id", "?")),
            switch=int(payload.get("switch", -1)),
            value=payload["value"])
        self.reports.append(report)
        if self._m_reports is not None:
            self._m_reports.inc()
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(f"harvest {report.seed_id}", track="harvester",
                           cat="lifecycle",
                           args={"trace_id": report.seed_id,
                                 "switch": report.switch})
        self.on_seed_report(report)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def on_attached(self) -> None:
        """Called once the harvester is wired to the bus."""

    def on_seed_report(self, report: SeedReport) -> None:
        """Called for every message a seed sends to this harvester."""

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    def send_to_seeds(self, machine: str, value: Any,
                      dst: Optional[int] = None) -> int:
        """Send ``value`` to this task's seeds of ``machine``.

        ``dst`` restricts delivery to one switch; returns messages sent.
        """
        if self._seeder is None:
            raise DeploymentError(f"harvester {self.name!r} is not attached")
        return self._seeder.broadcast_to_seeds(
            self.task_id, machine, dst, value,
            source=f"harvester/{self.task_id}")

    def log(self, message: str) -> None:  # pragma: no cover - debug aid
        pass


class RecordingHarvester(Harvester):
    """A harvester that simply records reports (tests, simple tasks)."""

    def __init__(self, name: str = "",
                 callback: Optional[Callable[[SeedReport], None]] = None
                 ) -> None:
        super().__init__(name)
        self.callback = callback

    def on_seed_report(self, report: SeedReport) -> None:
        if self.callback is not None:
            self.callback(report)

    @property
    def values(self) -> List[Any]:
        return [report.value for report in self.reports]


class ThresholdHarvester(Harvester):
    """The HH-style harvester: pushes a threshold on attach and can adapt
    it at runtime (List. 2's ``recv long newTh from harvester``)."""

    def __init__(self, machine: str, threshold: float,
                 name: str = "") -> None:
        super().__init__(name or f"{machine}-threshold")
        self.machine = machine
        self.threshold = threshold

    def on_attached(self) -> None:
        self.send_to_seeds(self.machine, int(self.threshold))

    def update_threshold(self, threshold: float) -> int:
        """Dynamically adjust the detection threshold network-wide;
        returns the number of seeds that received it."""
        self.threshold = threshold
        return self.send_to_seeds(self.machine, int(threshold))
