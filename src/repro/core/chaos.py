"""Deterministic fault injection for the control plane (chaos testing).

The :class:`FaultInjector` attaches to a :class:`repro.core.comm.ControlBus`
and perturbs every message sent through it: probabilistic loss and
duplication, fixed and jittered extra delay (which reorders messages
relative to each other), and scripted link/partition faults that cut a set
of endpoints off from the rest of the bus for a time window.

Everything is driven by one seeded ``random.Random``, so a chaos scenario
replays identically run after run — the property every test in this
repository relies on (``sim/engine.py`` is deliberately RNG-free, and this
module keeps it that way by owning its randomness).

Typical use::

    injector = FaultInjector(sim, seed=7).attach(bus)
    injector.add_rule(loss=0.2)                      # 20% uniform loss
    injector.partition_switch(2, at=10.0, duration=5.0)

Partitions are pure time windows evaluated at send time: scripting one in
the future costs no simulator events, and healing is just closing the
window.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import ChaosError
from repro.sim.engine import Simulator


@dataclass
class FaultRule:
    """One src/dst-scoped perturbation, active inside ``[start, end)``.

    ``src``/``dst`` are ``fnmatch`` patterns over bus endpoint names
    (e.g. ``"soil/*"`` or ``"seed/2/*"``).  ``loss`` and ``duplicate``
    are per-message probabilities; ``delay_s`` is added to every matching
    message with up to ``jitter_s`` more drawn uniformly — enough jitter
    relative to the send spacing reorders messages.
    """

    src: str = "*"
    dst: str = "*"
    loss: float = 0.0
    duplicate: float = 0.0
    delay_s: float = 0.0
    jitter_s: float = 0.0
    start: float = 0.0
    end: float = math.inf
    #: Messages this rule dropped (diagnostics).
    dropped: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ChaosError(f"loss must be a probability: {self.loss}")
        if not 0.0 <= self.duplicate <= 1.0:
            raise ChaosError(
                f"duplicate must be a probability: {self.duplicate}")
        if self.delay_s < 0 or self.jitter_s < 0:
            raise ChaosError("delays must be non-negative")
        if self.end < self.start:
            raise ChaosError(
                f"rule window is empty: [{self.start}, {self.end})")

    def matches(self, src: str, dst: str, now: float) -> bool:
        return (self.start <= now < self.end
                and fnmatchcase(src, self.src)
                and fnmatchcase(dst, self.dst))


@dataclass
class Partition:
    """A scripted network partition: endpoints matching ``patterns`` are
    cut off from everything else during ``[start, end)``.  Traffic with
    both ends on the same side still flows."""

    patterns: Tuple[str, ...]
    start: float
    end: float
    #: Messages this partition dropped (diagnostics).
    dropped: int = field(default=0, compare=False)

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def _inside(self, endpoint: str) -> bool:
        return any(fnmatchcase(endpoint, p) for p in self.patterns)

    def separates(self, src: str, dst: str) -> bool:
        return self._inside(src) != self._inside(dst)


@dataclass
class GrayFailure:
    """A scripted *gray* failure: one switch's control-plane output is
    probabilistically degraded — heartbeats, telemetry, and command
    replies are lost at ``loss`` — without a hard partition.

    Unlike :class:`Partition` the switch stays reachable and keeps
    answering *some* of the time, which is exactly the failure mode a
    two-stage heartbeat detector cannot confirm: suspicions flap as the
    occasional heartbeat sneaks through, and monitoring quality silently
    rots.  Remediation policies are meant to act on this.
    """

    switch_id: int
    loss: float
    start: float
    end: float
    rules: Tuple[FaultRule, ...] = ()

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    @property
    def dropped(self) -> int:
        """Messages eaten by this gray failure so far (diagnostics)."""
        return sum(rule.dropped for rule in self.rules)

    def heal(self, now: float) -> None:
        """Close the degradation window at ``now``."""
        self.end = now
        for rule in self.rules:
            rule.end = now


class FaultInjector:
    """Seeded, scriptable message-fault source for one control bus."""

    def __init__(self, sim: Simulator, seed: int = 0) -> None:
        self.sim = sim
        self.rng = random.Random(seed)
        self.rules: List[FaultRule] = []
        self.partitions: List[Partition] = []
        self.gray_failures: List[GrayFailure] = []
        self.bus: Optional[Any] = None
        self.messages_seen = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0
        self.partition_drops = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, bus: Any) -> "FaultInjector":
        """Hook this injector into ``bus``; returns self for chaining."""
        if getattr(bus, "fault_injector", None) is not None:
            raise ChaosError("bus already has a fault injector attached")
        if self.bus is not None:
            raise ChaosError(
                "injector is already attached to a bus; detach() first")
        bus.fault_injector = self
        self.bus = bus
        return self

    def detach(self) -> None:
        if self.bus is not None:
            self.bus.fault_injector = None
            self.bus = None

    # ------------------------------------------------------------------
    # Scenario scripting
    # ------------------------------------------------------------------
    def add_rule(self, src: str = "*", dst: str = "*", loss: float = 0.0,
                 duplicate: float = 0.0, delay_s: float = 0.0,
                 jitter_s: float = 0.0, start: float = 0.0,
                 end: float = math.inf) -> FaultRule:
        rule = FaultRule(src=src, dst=dst, loss=loss, duplicate=duplicate,
                         delay_s=delay_s, jitter_s=jitter_s,
                         start=start, end=end)
        self.rules.append(rule)
        return rule

    def lossy(self, loss: float, src: str = "*",
              dst: str = "*") -> FaultRule:
        """Shorthand for uniform message loss between two patterns."""
        return self.add_rule(src=src, dst=dst, loss=loss)

    def partition(self, patterns: Sequence[str],
                  at: Optional[float] = None,
                  duration: float = math.inf) -> Partition:
        """Cut ``patterns`` off from the rest of the bus.

        ``at`` defaults to *now*; scripting a future window is free.
        """
        start = self.sim.now if at is None else float(at)
        if duration <= 0:
            raise ChaosError(f"partition duration must be positive: "
                             f"{duration}")
        part = Partition(patterns=tuple(patterns), start=start,
                         end=start + duration)
        self.partitions.append(part)
        return part

    def partition_switch(self, switch_id: int,
                         at: Optional[float] = None,
                         duration: float = math.inf) -> Partition:
        """Partition one switch: its soil and every seed endpoint on it."""
        return self.partition(
            (f"soil/{switch_id}", f"seed/{switch_id}/*"),
            at=at, duration=duration)

    def gray_failure(self, switch_id: int, loss: float = 0.5,
                     at: Optional[float] = None,
                     duration: float = math.inf,
                     jitter_s: float = 0.0,
                     inbound_loss: float = 0.0) -> GrayFailure:
        """Probabilistically degrade one switch's control-plane *output*
        (heartbeats, lifecycle reports, seed telemetry) without cutting it
        off.  ``inbound_loss`` additionally degrades commands *toward*
        the switch (default 0: a gray switch usually hears fine and
        answers badly).  Returns a :class:`GrayFailure` handle with a
        per-failure drop count and a :meth:`GrayFailure.heal` switch.
        """
        if not 0.0 <= loss <= 1.0:
            raise ChaosError(f"loss must be a probability: {loss}")
        if not 0.0 <= inbound_loss <= 1.0:
            raise ChaosError(
                f"inbound_loss must be a probability: {inbound_loss}")
        start = self.sim.now if at is None else float(at)
        if duration <= 0:
            raise ChaosError(
                f"gray-failure duration must be positive: {duration}")
        end = start + duration
        rules = [
            self.add_rule(src=f"soil/{switch_id}", loss=loss,
                          jitter_s=jitter_s, start=start, end=end),
            self.add_rule(src=f"seed/{switch_id}/*", loss=loss,
                          jitter_s=jitter_s, start=start, end=end),
        ]
        if inbound_loss:
            rules.append(self.add_rule(dst=f"soil/{switch_id}",
                                       loss=inbound_loss,
                                       jitter_s=jitter_s,
                                       start=start, end=end))
        failure = GrayFailure(switch_id=switch_id, loss=loss,
                              start=start, end=end, rules=tuple(rules))
        self.gray_failures.append(failure)
        return failure

    def heal(self) -> int:
        """End every currently-active partition and gray failure;
        returns how many closed."""
        now = self.sim.now
        healed = 0
        for part in self.partitions:
            if part.active(now):
                part.end = now
                healed += 1
        for gray in self.gray_failures:
            if gray.active(now):
                gray.heal(now)
                healed += 1
        return healed

    # ------------------------------------------------------------------
    # The hook the bus calls
    # ------------------------------------------------------------------
    def plan(self, src: str, dst: str) -> List[float]:
        """Decide the fate of one message: a list of per-copy extra
        delays (empty list = dropped, two entries = duplicated)."""
        now = self.sim.now
        self.messages_seen += 1
        for part in self.partitions:
            if part.active(now) and part.separates(src, dst):
                part.dropped += 1
                self.partition_drops += 1
                self.messages_dropped += 1
                return []
        extra = 0.0
        copies = 1
        for rule in self.rules:
            if not rule.matches(src, dst, now):
                continue
            if rule.loss and self.rng.random() < rule.loss:
                rule.dropped += 1
                self.messages_dropped += 1
                return []
            if rule.delay_s or rule.jitter_s:
                extra += rule.delay_s + rule.jitter_s * self.rng.random()
            if rule.duplicate and self.rng.random() < rule.duplicate:
                copies += 1
                self.messages_duplicated += 1
        if extra > 0.0:
            self.messages_delayed += 1
        delays = [extra]
        for _ in range(copies - 1):
            # A duplicate takes its own (jittered) path through the broker.
            dup_extra = extra
            for rule in self.rules:
                if rule.matches(src, dst, now) and rule.jitter_s:
                    dup_extra += rule.jitter_s * self.rng.random()
            delays.append(dup_extra)
        return delays

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_partitions(self) -> List[Partition]:
        return [p for p in self.partitions if p.active(self.sim.now)]

    def stats(self) -> dict:
        return {
            "seen": self.messages_seen,
            "dropped": self.messages_dropped,
            "duplicated": self.messages_duplicated,
            "delayed": self.messages_delayed,
            "partition_drops": self.partition_drops,
        }
