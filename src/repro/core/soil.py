"""The soil: per-switch M&M foundation layer (SII-B-b).

The soil manages seed execution, tracks switch resources, aggregates
polling across seeds, and mediates every interaction between a seed and
the outside world (ASIC via the driver, other seeds, harvesters).

Polling aggregation: when several seeds poll the same subject, the soil
polls the ASIC once and fans the data out — "it is possible to poll the
data only once for all seeds to minimize communication to the ASIC and
avoid contention".  With aggregation disabled, every seed's poll crosses
the PCIe bus individually (the Fig. 8/9 comparison).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.almanac import codegen
from repro.almanac.analysis import (
    ConstEnv,
    PollVarInfo,
    analyze_poll_var,
    encode_polling_subjects,
)
from repro.almanac.interpreter import CompiledMachine, MachineInstance, flatten_machine
from repro.almanac.xmlcodec import decode_program
from repro.errors import DeploymentError, FarmError
from repro.net import filters as flt
from repro.sim.engine import PeriodicTimer, Simulator
from repro.switchsim.chassis import RESOURCE_TYPES, Switch
from repro.switchsim.stratum import SwitchDriver
from repro.switchsim.tcam import MONITORING, RuleAction, TcamRule
from repro.core.comm import (
    BusMessage,
    ControlBus,
    ExecutionMode,
    SoilCommConfig,
    estimate_size_bytes,
    seed_soil_cpu_cost,
    seed_soil_latency,
)
from repro.core.reliable import ReliableEndpoint, RetryPolicy

#: Default CPU cost of one seed event handler invocation (statistics
#: filtering + state machine bookkeeping) — the HH-class workload.
DEFAULT_EVENT_CPU_S = 10e-6

#: Baseline standing load of one deployed seed (timer + bookkeeping).
SEED_BASELINE_LOAD = 0.001

#: Shortest polling interval the soil will arm (protects the switch from a
#: zero/negative interval after a pathological reallocation).
MIN_POLL_INTERVAL_S = 1e-4

#: Packet samples pulled per probe firing.  Breadth-based detectors
#: (super-spreaders, floods) need to see many flows per batch.
PROBE_BATCH_SIZE = 64


@dataclass
class _PollPlan:
    """Precomputed firing plan for one trigger variable.

    Subjects and the armed interval only change on deploy/reallocate/
    ``set_trigger_interval``; deriving them there instead of on every
    firing keeps ``encode_polling_subjects`` and the rational-function
    interval evaluation out of the per-tick hot path.
    """

    info: PollVarInfo
    kind: str
    interval: Optional[float]
    subjects: Optional[frozenset]
    ports: Tuple[int, ...] = ()
    rule_patterns: Tuple[Any, ...] = ()
    #: Precomputed profiler attribution key (component, switch, seed,
    #: label) — shared by every event this plan schedules, so the
    #: profiled hot path never allocates a key per firing.
    cost_key: Optional[tuple] = None


@dataclass
class _PollGroup:
    """Seeds sharing one fused poll timer.

    Seeds whose plans agree on kind/interval/subjects *and* that were
    armed at the same instant fire in perfect sync forever, so the soil
    services them all from a single timer event: one heap entry, one
    callback, and a batch of deliveries that the vector dispatcher can
    run as one kernel invocation.
    """

    key: Any
    members: List[Tuple[str, str]]  # (seed_id, var), join order
    timer: Optional[PeriodicTimer] = None


def scalar_poll_forced() -> bool:
    """Per-seed reference polling when ``REPRO_SCALAR_POLL`` is truthy
    (mirrors the ``REPRO_INTERPRET`` codegen escape hatch)."""
    flag = os.environ.get("REPRO_SCALAR_POLL", "").strip().lower()
    return bool(flag) and flag not in ("0", "false", "no", "off")


#: Shared decode+flatten results; seeds of one task deploy the same XML on
#: hundreds of switches, and a shared CompiledMachine lets the closure and
#: vector-kernel caches amortize across the fleet (instances never mutate
#: the compiled object).
_COMPILE_CACHE: Dict[Tuple[str, str], CompiledMachine] = {}


def _compiled_for(program_xml: str, machine_name: str) -> CompiledMachine:
    key = (program_xml, machine_name)
    compiled = _COMPILE_CACHE.get(key)
    if compiled is None:
        if len(_COMPILE_CACHE) >= 512:
            _COMPILE_CACHE.clear()
        program = decode_program(program_xml)
        compiled = flatten_machine(program, machine_name)
        _COMPILE_CACHE[key] = compiled
    return compiled


@dataclass
class SeedDeployment:
    """Everything the soil tracks about one running seed."""

    seed_id: str
    task_id: str
    machine_name: str
    instance: MachineInstance
    allocation: Dict[str, float]
    poll_vars: Dict[str, PollVarInfo]
    timers: Dict[str, PeriodicTimer] = field(default_factory=dict)
    rules: List[int] = field(default_factory=list)  # installed TCAM rule ids
    poll_plans: Dict[str, _PollPlan] = field(default_factory=dict)
    event_cpu_s: float = DEFAULT_EVENT_CPU_S
    events_delivered: int = 0
    messages_sent: int = 0
    deployed_at: float = 0.0


@dataclass
class _PollCacheEntry:
    time: float
    data: Any


class _SeedHost:
    """HostInterface implementation binding a seed to its soil."""

    def __init__(self, soil: "Soil", deployment: SeedDeployment) -> None:
        self.soil = soil
        self.deployment = deployment

    def now(self) -> float:
        return self.soil.sim.now

    def resources(self) -> Mapping[str, float]:
        return dict(self.deployment.allocation)

    def add_tcam_rule(self, rule: Dict[str, Any]) -> None:
        self.soil.install_rule(self.deployment, rule)

    def remove_tcam_rule(self, pattern: flt.Filter) -> None:
        self.soil.remove_rules(self.deployment, pattern)

    def get_tcam_rule(self, pattern: flt.Filter) -> Optional[Dict[str, Any]]:
        rule = self.soil.driver.get_table_entry(pattern)
        if rule is None:
            return None
        return {"__struct__": "Rule", "pattern": rule.pattern,
                "act": {"action": rule.action.value, **rule.params}}

    def send_to_harvester(self, value: Any) -> None:
        self.soil.send_to_harvester(self.deployment, value)

    def send_to_machine(self, machine: str, dst: Optional[Any],
                        value: Any) -> None:
        self.soil.send_to_machine(self.deployment, machine, dst, value)

    def set_trigger_interval(self, var: str, interval: float) -> None:
        self.soil.set_trigger_interval(self.deployment, var, interval)

    def transit_hook(self, old_state: str, new_state: str) -> None:
        self.soil.on_transition(self.deployment, old_state, new_state)

    def exec_external(self, command: str, arg: Any) -> Any:
        return self.soil.exec_external(self.deployment, command, arg)

    def log(self, message: str) -> None:
        self.soil.logs.append((self.soil.sim.now,
                               self.deployment.seed_id, message))


class Soil:
    """One switch's M&M foundation layer."""

    def __init__(self, sim: Simulator, switch: Switch, driver: SwitchDriver,
                 bus: ControlBus,
                 config: Optional[SoilCommConfig] = None,
                 resource_types=RESOURCE_TYPES,
                 retry_policy: Optional[RetryPolicy] = None,
                 batching: Optional[bool] = None) -> None:
        self.sim = sim
        self.switch = switch
        self.driver = driver
        self.bus = bus
        self.config = config or SoilCommConfig()
        #: Fused poll groups (the batched hot path).  ``None`` defers to
        #: the REPRO_SCALAR_POLL escape hatch; an explicit bool wins.
        if batching is None:
            batching = not scalar_poll_forced()
        self.batching = bool(batching)
        self._poll_groups: Dict[Any, _PollGroup] = {}
        self._memberships: Dict[Tuple[str, str], _PollGroup] = {}
        # Incremental resource-accounting state (avoids full O(seeds)
        # recomputation on every deploy/undeploy/interval change).
        self._cpu_load_seeds: set = set()
        self._pcie_rates: Dict[str, Tuple[Any, ...]] = {}
        self._pcie_subject_rates: Dict[Any, Dict[Tuple[str, str],
                                                 float]] = {}
        self.resource_types = tuple(resource_types)
        self.deployments: Dict[str, SeedDeployment] = {}
        self.logs: List[Tuple[float, str, str]] = []
        #: External programs runnable via Almanac's exec() (List. 1).
        self.externals: Dict[str, Callable[[Any], Any]] = {}
        #: exec() CPU cost per call, per command (seconds of one core).
        self.external_costs: Dict[str, float] = {}
        #: Additional builtins injected into every seed deployed here
        #: (e.g. the sketch API, repro.sketches.install_sketch_builtins).
        self.extra_builtins: Dict[str, Callable[..., Any]] = {}
        self._poll_cache: Dict[Any, _PollCacheEntry] = {}
        self._transition_listeners: List[Callable[[str, str, str], None]] = []
        self.endpoint = f"soil/{switch.switch_id}"
        #: Set by the fault-tolerance machinery when the switch dies.
        self.failed = False
        #: "propagate" re-raises seed exceptions (strict, default);
        #: "restart" re-instantiates a crashed seed, up to max_seed_crashes.
        self.crash_policy = "propagate"
        self.max_seed_crashes = 3
        self.seed_crashes: Dict[str, int] = {}
        #: Reliable command channel (seeder -> soil commands, soil ->
        #: seeder lifecycle reports).  A failed soil goes silent: it
        #: neither acks nor processes until :meth:`power_on`.
        self.channel = ReliableEndpoint(
            bus, sim, self.endpoint, self._on_bus_message,
            policy=retry_policy, alive=lambda: not self.failed)
        #: Router installed by the seeder for inter-seed messages.
        self.seed_message_router: Optional[Callable[..., None]] = None
        # Observability: the soil registers into the bus's registry/tracer
        # (one shared pair per deployment when FarmDeployment wired them).
        self.metrics = bus.metrics
        self.tracer = bus.tracer
        self._track = f"switch/{switch.switch_id}"
        # Shared profiler attribution keys for events that are not
        # per-seed (batched deliveries, inbound messages).
        self._batch_cost_key = ("soil", switch.switch_id, None,
                                "deliver-batch")
        self._recv_cost_key = ("soil", switch.switch_id, None, "recv")
        labels = {"switch": switch.switch_id}
        self._m_polls = self.metrics.counter(
            "farm_soil_polls_total",
            "ASIC polls actually issued over PCIe.", labels=labels)
        self._m_cache_hits = self.metrics.counter(
            "farm_soil_poll_cache_hits_total",
            "Seed polls served from the aggregation cache.", labels=labels)
        self._m_events = self.metrics.counter(
            "farm_soil_events_total",
            "Seed handler invocations (trigger + recv).", labels=labels)
        self._m_seed_messages = self.metrics.counter(
            "farm_soil_seed_messages_total",
            "Messages seeds sent (harvester + seed-to-seed).", labels=labels)
        self._m_crashes = self.metrics.counter(
            "farm_soil_seed_crashes_total",
            "Seed crashes contained by the restart policy.", labels=labels)
        self._m_deploys = self.metrics.counter(
            "farm_soil_deploys_total",
            "Seeds deployed on this switch.", labels=labels)
        self._m_undeploys = self.metrics.counter(
            "farm_soil_undeploys_total",
            "Seeds undeployed from this switch.", labels=labels)
        self._g_seeds = self.metrics.gauge(
            "farm_soil_seeds",
            "Seeds currently deployed on this switch.", labels=labels)
        self._m_batched_polls = self.metrics.counter(
            "farm_soil_batched_polls_total",
            "Fused poll-group firings that served more than one seed.",
            labels=labels)
        self._m_vector_events = self.metrics.counter(
            "farm_soil_vectorized_events_total",
            "Seed handler invocations dispatched through a vector kernel.",
            labels=labels)

    # -- legacy counter attributes (now registry-backed) -------------------
    @property
    def polls_issued(self) -> int:
        return int(self._m_polls.value)

    @property
    def polls_served_from_cache(self) -> int:
        return int(self._m_cache_hits.value)

    # ------------------------------------------------------------------
    # Deployment lifecycle
    # ------------------------------------------------------------------
    def deploy(self, seed_id: str, task_id: str, program_xml: str,
               machine_name: str,
               externals: Optional[Mapping[str, Any]] = None,
               allocation: Optional[Mapping[str, float]] = None,
               snapshot: Optional[Mapping[str, Any]] = None,
               event_cpu_s: float = DEFAULT_EVENT_CPU_S) -> SeedDeployment:
        """Instantiate a seed from its XML payload and start it.

        With ``snapshot`` the seed resumes mid-state (migration arrival)
        instead of entering its initial state.
        """
        if self.failed:
            raise DeploymentError(
                f"switch {self.switch.switch_id} is marked failed")
        if seed_id in self.deployments:
            raise DeploymentError(
                f"seed {seed_id!r} already deployed on switch "
                f"{self.switch.switch_id}")
        compiled = _compiled_for(program_xml, machine_name)
        allocation = {r: float((allocation or {}).get(r, 0.0))
                      for r in self.resource_types}
        env = ConstEnv.for_machine(
            _flat_decl(compiled), externals)
        poll_vars = {
            decl.name: analyze_poll_var(decl, env, self.resource_types)
            for decl in compiled.trigger_decls}
        deployment = SeedDeployment(
            seed_id=seed_id, task_id=task_id, machine_name=machine_name,
            instance=None,  # set below (host needs the deployment object)
            allocation=allocation, poll_vars=poll_vars,
            event_cpu_s=event_cpu_s, deployed_at=self.sim.now)
        host = _SeedHost(self, deployment)
        instance = MachineInstance(compiled, host, externals=externals,
                                   instance_id=seed_id,
                                   extra_builtins=self.extra_builtins,
                                   tracer=self.tracer)
        deployment.instance = instance
        self.deployments[seed_id] = deployment
        self.bus.register(self._seed_endpoint(seed_id),
                          lambda msg: self._on_seed_message(seed_id, msg))
        if snapshot is not None:
            instance.restore(snapshot)
        else:
            instance.start()
        self._arm_triggers(deployment)
        self._refresh_cpu_load(deployment)
        self._refresh_pcie_demand(deployment)
        self._m_deploys.inc()
        self._g_seeds.set(len(self.deployments))
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"deploy {seed_id}", track=self._track,
                           cat="lifecycle",
                           args={"trace_id": seed_id, "task": task_id,
                                 "resumed": snapshot is not None})
        return deployment

    def undeploy(self, seed_id: str) -> Dict[str, Any]:
        """Stop a seed and release everything; returns its final snapshot."""
        deployment = self._get(seed_id)
        snapshot = deployment.instance.snapshot()
        self._disarm_triggers(deployment)
        for rule_id in list(deployment.rules):
            try:
                self.driver.delete_table_entry(rule_id)
            except FarmError:
                pass
        deployment.rules.clear()
        self.switch.cpu.clear_standing_load(f"seed/{seed_id}")
        self._cpu_load_seeds.discard(seed_id)
        self.bus.unregister(self._seed_endpoint(seed_id))
        del self.deployments[seed_id]
        self._refresh_pcie_demand(removed_seed_id=seed_id)
        self._m_undeploys.inc()
        self._g_seeds.set(len(self.deployments))
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"undeploy {seed_id}", track=self._track,
                           cat="lifecycle", args={"trace_id": seed_id})
        return snapshot

    def snapshot_seed(self, seed_id: str) -> Dict[str, Any]:
        """Inner state for migration (seed keeps running until undeploy)."""
        return self._get(seed_id).instance.snapshot()

    def reallocate(self, seed_id: str,
                   allocation: Mapping[str, float]) -> None:
        """Apply a new resource allocation; fires the realloc trigger."""
        deployment = self._get(seed_id)
        deployment.allocation = {r: float(allocation.get(r, 0.0))
                                 for r in self.resource_types}
        self._arm_triggers(deployment)
        self._refresh_cpu_load(deployment)
        self._refresh_pcie_demand(deployment)
        deployment.instance.fire_realloc()

    def _get(self, seed_id: str) -> SeedDeployment:
        try:
            return self.deployments[seed_id]
        except KeyError:
            raise DeploymentError(
                f"no seed {seed_id!r} on switch {self.switch.switch_id}"
            ) from None

    def _seed_endpoint(self, seed_id: str) -> str:
        return f"seed/{self.switch.switch_id}/{seed_id}"

    # ------------------------------------------------------------------
    # Trigger variables: timers + polling
    # ------------------------------------------------------------------
    def _interval_for(self, deployment: SeedDeployment,
                      info: PollVarInfo) -> Optional[float]:
        try:
            interval = info.interval_at(deployment.allocation)
        except FarmError:
            return None
        if interval <= 0 or interval != interval:  # NaN guard
            return None
        return max(interval, MIN_POLL_INTERVAL_S)

    def _rebuild_poll_plans(self, deployment: SeedDeployment) -> None:
        num_ports = self.switch.asic.num_ports
        plans: Dict[str, _PollPlan] = {}
        for name, info in deployment.poll_vars.items():
            interval = self._interval_for(deployment, info)
            subjects: Optional[frozenset] = None
            ports: Tuple[int, ...] = ()
            rule_patterns: Tuple[Any, ...] = ()
            if info.kind != "time":
                subjects = encode_polling_subjects(info.what, num_ports)
                ports = tuple(sorted(
                    p for kind, p in subjects if kind == "port"))
                rule_patterns = tuple(
                    c for kind, c in subjects if kind == "tcam")
            plans[name] = _PollPlan(
                info=info, kind=info.kind, interval=interval,
                subjects=subjects, ports=ports, rule_patterns=rule_patterns,
                cost_key=("soil", self.switch.switch_id,
                          deployment.seed_id, name))
        deployment.poll_plans = plans

    def _disarm_triggers(self, deployment: SeedDeployment) -> None:
        """Detach a seed from its timers (shared group timers survive as
        long as any other member remains)."""
        for name, timer in deployment.timers.items():
            member = (deployment.seed_id, name)
            group = self._memberships.pop(member, None)
            if group is None:
                timer.stop()  # private per-seed timer
                continue
            if member in group.members:
                group.members.remove(member)
            if not group.members:
                group.timer.stop()
                self._poll_groups.pop(group.key, None)
        deployment.timers.clear()

    def _arm_triggers(self, deployment: SeedDeployment) -> None:
        self._disarm_triggers(deployment)
        self._rebuild_poll_plans(deployment)
        for name, plan in deployment.poll_plans.items():
            if plan.interval is None:
                continue  # no resources allocated for this poll yet
            if self.batching:
                self._join_group(deployment, name, plan)
                continue
            timer = self.sim.every(
                plan.interval, self._fire_trigger, deployment.seed_id, name,
                label=f"{deployment.seed_id}.{name}",
                cost_key=plan.cost_key)
            deployment.timers[name] = timer

    def _join_group(self, deployment: SeedDeployment, name: str,
                    plan: _PollPlan) -> None:
        """Attach a trigger to a fused poll group (creating it on first
        join).  Keying on the arm time keeps group members phase-aligned:
        a seed deployed later would fire on a different schedule and must
        not piggyback on an older group's timer."""
        key = (plan.kind, plan.interval, plan.subjects, plan.ports,
               plan.rule_patterns, deployment.event_cpu_s, self.sim.now)
        group = self._poll_groups.get(key)
        if group is None:
            group = _PollGroup(key=key, members=[])
            group.timer = self.sim.every(
                plan.interval, self._fire_group, group,
                label=f"poll-group {self.switch.switch_id}:{name}",
                cost_key=("soil", self.switch.switch_id, None,
                          f"poll-group {name}"))
            self._poll_groups[key] = group
        member = (deployment.seed_id, name)
        group.members.append(member)
        self._memberships[member] = group
        deployment.timers[name] = group.timer

    def set_trigger_interval(self, deployment: SeedDeployment, var: str,
                             interval: float) -> None:
        """Dynamic polling-rate change from inside the seed (SIII-A-d)."""
        interval = max(float(interval), MIN_POLL_INTERVAL_S)
        member = (deployment.seed_id, var)
        group = self._memberships.get(member)
        if group is not None:
            if len(group.members) == 1:
                # Sole member: retime the group in place.  Retire its key
                # so later deploys don't phase-join the retimed timer.
                self._poll_groups.pop(group.key, None)
                group.key = ("priv", member, self.sim.now)
                group.timer.reschedule(interval)
            else:
                # Leave the shared group and fire on a private schedule
                # (timing-identical to a reschedule of an own timer).
                group.members.remove(member)
                private = _PollGroup(key=("priv", member, self.sim.now),
                                     members=[member])
                private.timer = self.sim.every(
                    interval, self._fire_group, private,
                    label=f"{deployment.seed_id}.{var}",
                    cost_key=("soil", self.switch.switch_id,
                              deployment.seed_id, var))
                self._memberships[member] = private
                deployment.timers[var] = private.timer
        elif self.batching:
            private = _PollGroup(key=("priv", member, self.sim.now),
                                 members=[member])
            private.timer = self.sim.every(
                interval, self._fire_group, private,
                label=f"{deployment.seed_id}.{var}",
                cost_key=("soil", self.switch.switch_id,
                          deployment.seed_id, var))
            self._memberships[member] = private
            deployment.timers[var] = private.timer
        else:
            timer = deployment.timers.get(var)
            if timer is not None:
                timer.reschedule(interval)
            else:
                deployment.timers[var] = self.sim.every(
                    interval, self._fire_trigger, deployment.seed_id, var,
                    label=f"{deployment.seed_id}.{var}",
                    cost_key=("soil", self.switch.switch_id,
                              deployment.seed_id, var))
        # Interval now diverges from the static analysis: pin it.
        info = deployment.poll_vars.get(var)
        if info is not None:
            from repro.almanac.poly import LinPoly, RationalFunc
            deployment.poll_vars[var] = PollVarInfo(
                name=info.name, kind=info.kind,
                ival=RationalFunc(LinPoly.constant(interval)),
                what=info.what)
        self._rebuild_poll_plans(deployment)
        self._refresh_cpu_load(deployment)
        self._refresh_pcie_demand(deployment)

    def _fire_trigger(self, seed_id: str, var: str) -> None:
        deployment = self.deployments.get(seed_id)
        if deployment is None:
            return
        plan = deployment.poll_plans[var]
        if plan.kind == "time":
            self._deliver(deployment, var, None, extra_latency=0.0)
            return
        if plan.kind == "probe":
            packets, latency = self.driver.sample_packets(
                plan.info.what, max_packets=PROBE_BATCH_SIZE)
            self._deliver(deployment, var, packets, extra_latency=latency)
            return
        data, latency = self._poll(deployment, plan)
        self._deliver(deployment, var, data, extra_latency=latency)

    def _poll(self, deployment: SeedDeployment,
              plan: _PollPlan) -> Tuple[Any, float]:
        """Poll statistics, serving from the aggregation cache when fresh."""
        cache_key = plan.subjects
        interval = plan.interval or MIN_POLL_INTERVAL_S
        if self.config.aggregation:
            cached = self._poll_cache.get(cache_key)
            if cached is not None and self.sim.now - cached.time < interval:
                self._m_cache_hits.inc()
                # Aggregated fan-out: no PCIe crossing, but the data must
                # reach the seed — trivial for threads (shared buffer),
                # two context switches for process seeds (Fig. 9's cost).
                cpu, ctx = seed_soil_cpu_cost(self.config)
                self.switch.cpu.charge_work(cpu, context_switches=ctx)
                return cached.data, 0.0
        self._m_polls.inc()
        ports = plan.ports
        if ports:
            stats, latency = self.driver.read_port_counters(list(ports))
        elif plan.rule_patterns:
            rule_ids = [rule.rule_id
                        for rule in self.switch.tcam.rules(MONITORING)]
            stats, latency = self.driver.read_rule_counters(rule_ids)
        else:
            stats, latency = self.driver.read_port_counters()
        if self.config.aggregation:
            self._poll_cache[cache_key] = _PollCacheEntry(self.sim.now, stats)
            # Aggregation work happens in the soil (Fig. 9): merging and
            # fanning out costs CPU, more when seeds are processes.
            cpu, ctx = seed_soil_cpu_cost(self.config)
            self.switch.cpu.charge_work(cpu, context_switches=ctx)
        return stats, latency

    def _deliver(self, deployment: SeedDeployment, var: str, data: Any,
                 extra_latency: float) -> None:
        comm_latency = seed_soil_latency(self.config, len(self.deployments))
        cpu_cost, ctx = seed_soil_cpu_cost(self.config)
        handler_delay = self.switch.cpu.charge_work(
            deployment.event_cpu_s + cpu_cost, context_switches=ctx)
        total = extra_latency + comm_latency + handler_delay
        tracer = self.tracer
        if tracer.enabled:
            # The cost model fixes the delivery latency up front, so the
            # whole poll->handler interval is one complete span.
            tracer.complete(f"{deployment.seed_id}.{var}", track=self._track,
                            start=self.sim.now, duration=total, cat="poll",
                            args={"trace_id": deployment.seed_id})
        plan = deployment.poll_plans.get(var)
        self.sim.schedule(total, self._run_handler, deployment.seed_id, var,
                          data, label=f"deliver {deployment.seed_id}.{var}",
                          cost_key=plan.cost_key if plan else None)

    def _fire_group(self, group: _PollGroup) -> None:
        """Service every member of a fused poll group from one timer event.

        Each member runs the exact per-seed poll/charge/trace sequence of
        the scalar path (in join = deploy order, matching the scalar heap
        order), so counters, CPU accounting, and latencies are identical;
        only the event-heap traffic shrinks.  Deliveries that land at the
        same instant are bucketed so the handler batch can be dispatched
        through one vector kernel.
        """
        live = []
        for seed_id, var in list(group.members):
            deployment = self.deployments.get(seed_id)
            if deployment is None:
                continue
            plan = deployment.poll_plans.get(var)
            if plan is None:
                continue
            live.append((deployment, var, plan))
        if not live:
            return
        if len(live) > 1:
            self._m_batched_polls.inc()
        deliveries: Dict[float, List[Tuple[str, str, Any]]] = {}
        delivery_keys: Dict[float, Optional[tuple]] = {}
        for deployment, var, plan in live:
            if plan.kind == "time":
                data, extra = None, 0.0
            elif plan.kind == "probe":
                data, extra = self.driver.sample_packets(
                    plan.info.what, max_packets=PROBE_BATCH_SIZE)
            else:
                data, extra = self._poll(deployment, plan)
            comm_latency = seed_soil_latency(self.config,
                                             len(self.deployments))
            cpu_cost, ctx = seed_soil_cpu_cost(self.config)
            handler_delay = self.switch.cpu.charge_work(
                deployment.event_cpu_s + cpu_cost, context_switches=ctx)
            total = extra + comm_latency + handler_delay
            tracer = self.tracer
            if tracer.enabled:
                tracer.complete(f"{deployment.seed_id}.{var}",
                                track=self._track, start=self.sim.now,
                                duration=total, cat="poll",
                                args={"trace_id": deployment.seed_id})
            bucket = deliveries.setdefault(total, [])
            if not bucket:
                # First member's key serves if the bucket stays single.
                delivery_keys[total] = plan.cost_key
            bucket.append((deployment.seed_id, var, data))
        for total, batch in deliveries.items():
            if len(batch) == 1:
                seed_id, var, data = batch[0]
                self.sim.schedule(total, self._run_handler, seed_id, var,
                                  data, label=f"deliver {seed_id}.{var}",
                                  cost_key=delivery_keys[total])
            else:
                self.sim.schedule(total, self._run_handler_batch, batch,
                                  label=f"deliver batch x{len(batch)}",
                                  cost_key=self._batch_cost_key)

    def _run_handler(self, seed_id: str, var: str, data: Any) -> None:
        deployment = self.deployments.get(seed_id)
        if deployment is None:
            return  # undeployed while the event was in flight
        deployment.events_delivered += 1
        self._m_events.inc()
        try:
            deployment.instance.fire_trigger_var(var, data)
        except FarmError:
            if not self._contain_crash(deployment):
                raise

    def _run_handler_batch(
            self, batch: List[Tuple[str, str, Any]]) -> None:
        live = []
        for seed_id, var, data in batch:
            deployment = self.deployments.get(seed_id)
            if deployment is None:
                continue  # undeployed while the event was in flight
            live.append((deployment, var, data))
        if len(live) > 1 and self._try_vector_fire(live):
            return
        for deployment, var, data in live:
            deployment.events_delivered += 1
            self._m_events.inc()
            try:
                deployment.instance.fire_trigger_var(var, data)
            except FarmError:
                if not self._contain_crash(deployment):
                    raise

    def _try_vector_fire(
            self, items: List[Tuple[SeedDeployment, str, Any]]) -> bool:
        """Dispatch a same-instant handler batch through a vector kernel.

        Requires every member to share one CompiledMachine (identity —
        guaranteed for same-task seeds via the deploy compile cache), the
        same current state, and an affine handler (see
        :mod:`repro.almanac.vector`).  Any mismatch, or tracing being on
        (per-event spans), falls back to the scalar loop above.
        """
        if self.tracer.enabled:
            return False
        first, var, _ = items[0]
        compiled = first.instance.compiled
        state = first.instance.current_state
        instances = []
        data_values = []
        for deployment, v, data in items:
            inst = deployment.instance
            if (v != var or inst.compiled is not compiled
                    or inst.current_state != state):
                return False
            instances.append(inst)
            data_values.append(data)
        kernel = codegen.vector_kernel(compiled, state, var)
        if kernel is None or not kernel.fire(instances, data_values):
            return False
        count = len(items)
        for deployment, _v, _d in items:
            deployment.events_delivered += 1
        self._m_events.inc(count)
        self._m_vector_events.inc(count)
        return True

    def _contain_crash(self, deployment: SeedDeployment) -> bool:
        """Apply the crash policy; returns True if the crash was handled.

        Under "restart" the seed is re-instantiated from scratch (its
        state is assumed corrupted) until max_seed_crashes, after which
        the seed stays down and the failure propagates.
        """
        if self.crash_policy != "restart":
            return False
        seed_id = deployment.seed_id
        crashes = self.seed_crashes.get(seed_id, 0) + 1
        self.seed_crashes[seed_id] = crashes
        if crashes > self.max_seed_crashes:
            return False
        compiled = deployment.instance.compiled
        externals = {
            name: deployment.instance.machine_scope.vars[name]
            for name in compiled.external_names
            if name in deployment.instance.machine_scope.vars}
        host = _SeedHost(self, deployment)
        fresh = MachineInstance(compiled, host, externals=externals,
                                instance_id=seed_id,
                                extra_builtins=self.extra_builtins,
                                tracer=self.tracer)
        deployment.instance = fresh
        fresh.start()
        self._arm_triggers(deployment)
        self.logs.append((self.sim.now, seed_id,
                          f"restarted after crash #{crashes}"))
        self._m_crashes.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"crash-restart {seed_id}", track=self._track,
                           cat="lifecycle",
                           args={"trace_id": seed_id, "crashes": crashes})
        return True

    # ------------------------------------------------------------------
    # Resource accounting refresh
    # ------------------------------------------------------------------
    def _refresh_cpu_load(self, deployment: SeedDeployment) -> None:
        # Event-handling work is charged per delivery (charge_work in
        # _deliver); the standing entry covers only the seed's constant
        # bookkeeping so nothing is double counted.  The load is the same
        # constant for every seed, so re-setting it on every reallocate/
        # interval change is pure waste — set it once per deployment.
        seed_id = deployment.seed_id
        if seed_id in self._cpu_load_seeds:
            return
        self.switch.cpu.set_standing_load(f"seed/{seed_id}",
                                          SEED_BASELINE_LOAD)
        self._cpu_load_seeds.add(seed_id)

    def _refresh_pcie_demand(self, deployment: Optional[SeedDeployment]
                             = None,
                             removed_seed_id: Optional[str] = None) -> None:
        """Maintain the standing PCIe polling demand incrementally.

        With aggregation, each subject is charged at the *fastest* rate any
        seed polls it; without, rates add up (SIV-B-b's pollres model).
        Only the touched seed's contribution is recomputed; everyone
        else's entries carry forward in the per-subject rate table, so
        the cost is O(subjects) instead of O(seeds x plans).
        """
        from repro.switchsim.pcie import BYTES_PER_COUNTER
        if removed_seed_id is not None:
            self._drop_pcie_rates(removed_seed_id)
        if deployment is not None:
            seed_id = deployment.seed_id
            self._drop_pcie_rates(seed_id)
            entries = []
            for name, plan in deployment.poll_plans.items():
                if plan.kind == "time" or plan.interval is None:
                    continue
                rate = (len(plan.subjects) * BYTES_PER_COUNTER
                        / plan.interval)
                entries.append((plan.subjects, name))
                self._pcie_subject_rates.setdefault(
                    plan.subjects, {})[(seed_id, name)] = rate
            self._pcie_rates[seed_id] = tuple(entries)
        total = 0.0
        for rates in self._pcie_subject_rates.values():
            values = rates.values()
            total += max(values) if self.config.aggregation \
                else sum(values)
        self.switch.pcie.register_poller("soil", total)

    def _drop_pcie_rates(self, seed_id: str) -> None:
        for subjects, name in self._pcie_rates.pop(seed_id, ()):
            table = self._pcie_subject_rates.get(subjects)
            if table is None:
                continue
            table.pop((seed_id, name), None)
            if not table:
                del self._pcie_subject_rates[subjects]

    # ------------------------------------------------------------------
    # Local reactions: TCAM
    # ------------------------------------------------------------------
    _ACTION_MAP = {
        "forward": RuleAction.FORWARD,
        "drop": RuleAction.DROP,
        "rate_limit": RuleAction.RATE_LIMIT,
        "mirror": RuleAction.MIRROR,
        "count": RuleAction.COUNT,
        "set_qos": RuleAction.SET_QOS,
    }

    def install_rule(self, deployment: SeedDeployment,
                     rule_struct: Dict[str, Any]) -> int:
        """Install a monitoring rule on behalf of a seed (local reaction)."""
        pattern = rule_struct.get("pattern")
        if not isinstance(pattern, flt.Filter):
            raise DeploymentError("Rule.pattern must be a filter")
        act = rule_struct.get("act")
        params: Dict[str, Any] = {}
        if isinstance(act, dict):
            action_name = str(act.get("action", "count"))
            params = {k: v for k, v in act.items()
                      if k not in ("action", "__struct__")}
        else:
            action_name = str(act or "count")
        action = self._ACTION_MAP.get(action_name)
        if action is None:
            raise DeploymentError(f"unknown rule action {action_name!r}")
        budget = deployment.allocation.get("TCAM", 0.0)
        if budget and len(deployment.rules) + 1 > budget:
            raise DeploymentError(
                f"seed {deployment.seed_id!r} exceeded its TCAM budget "
                f"({int(budget)} rules)")
        rule = TcamRule(pattern=pattern, action=action, priority=10,
                        params=params, region=MONITORING)
        rule_id, _latency = self.driver.write_table_entry(rule)
        deployment.rules.append(rule_id)
        return rule_id

    def remove_rules(self, deployment: SeedDeployment,
                     pattern: flt.Filter) -> int:
        removed = 0
        for rule_id in list(deployment.rules):
            try:
                rule = self.switch.tcam.get(rule_id)
            except FarmError:
                deployment.rules.remove(rule_id)
                continue
            if rule.pattern == pattern:
                self.driver.delete_table_entry(rule_id)
                deployment.rules.remove(rule_id)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send_to_harvester(self, deployment: SeedDeployment,
                          value: Any) -> None:
        deployment.messages_sent += 1
        self._m_seed_messages.inc()
        dst = f"harvester/{deployment.task_id}"
        if not self.bus.is_registered(dst):
            return  # task has no harvester; message is dropped silently
        # Telemetry is fire-and-forget (a lost report ages out of any
        # windowed aggregate), but it carries a per-seed sequence number
        # so the harvester can discard duplicates a chaotic bus created.
        self.bus.send(self._seed_endpoint(deployment.seed_id), dst,
                      {"seed_id": deployment.seed_id,
                       "switch": self.switch.switch_id, "value": value,
                       "rseq": deployment.messages_sent,
                       # Deployment epoch: rseq restarts when a seed is
                       # redeployed (failover), so dedup keys include it.
                       "epoch": deployment.deployed_at},
                      size_bytes=estimate_size_bytes(value))

    def send_to_machine(self, deployment: SeedDeployment, machine: str,
                        dst: Optional[Any], value: Any) -> None:
        deployment.messages_sent += 1
        self._m_seed_messages.inc()
        if self.seed_message_router is None:
            raise DeploymentError(
                "no seed message router installed (is a seeder running?)")
        self.seed_message_router(deployment.seed_id, deployment.machine_name,
                                 machine, dst, value)

    def _on_bus_message(self, message: BusMessage) -> None:
        """Seeder commands addressed to the soil (reliable channel).

        Every command is idempotent: the reliable layer deduplicates true
        retransmissions, but the seeder may legitimately re-issue a
        command (dead-letter recovery, stale-sweep), so handlers tolerate
        already-applied state rather than raising.
        """
        payload = message.payload
        if not isinstance(payload, dict) or "cmd" not in payload:
            return
        command = str(payload["cmd"])
        if command == "deploy":
            self._cmd_deploy(message.src, payload)
        elif command == "undeploy":
            self._cmd_undeploy(message.src, payload)
        elif command == "reallocate":
            self._cmd_reallocate(payload)

    def _reply(self, dst: str, payload: Dict[str, Any]) -> None:
        self.channel.send(dst, payload)

    def _cmd_deploy(self, reply_to: str, payload: Dict[str, Any]) -> None:
        seed_id = payload["seed_id"]
        deployment = self.deployments.get(seed_id)
        if deployment is None:
            try:
                deployment = self.deploy(
                    seed_id=seed_id, task_id=payload["task_id"],
                    program_xml=payload["program_xml"],
                    machine_name=payload["machine_name"],
                    externals=payload.get("externals"),
                    allocation=payload.get("allocation"),
                    snapshot=payload.get("snapshot"),
                    event_cpu_s=payload.get(
                        "event_cpu_s", DEFAULT_EVENT_CPU_S))
            except DeploymentError as exc:
                self._reply(reply_to, {
                    "event": "deploy-failed", "seed_id": seed_id,
                    "switch": self.switch.switch_id, "error": str(exc)})
                return
        self._reply(reply_to, {
            "event": "deployed", "seed_id": seed_id,
            "switch": self.switch.switch_id,
            "state": deployment.instance.current_state})

    def _cmd_undeploy(self, reply_to: str, payload: Dict[str, Any]) -> None:
        seed_id = payload["seed_id"]
        reason = payload.get("reason", "remove")
        snapshot = None
        if seed_id in self.deployments:
            snapshot = self.undeploy(seed_id)
        self._reply(reply_to, {
            "event": "undeployed", "seed_id": seed_id,
            "switch": self.switch.switch_id, "reason": reason,
            "dest": payload.get("dest"),
            # The snapshot only travels when someone waits for it
            # (migration); plain removals don't ship dead state.
            "snapshot": snapshot if reason == "migrate" else None})

    def _cmd_reallocate(self, payload: Dict[str, Any]) -> None:
        seed_id = payload["seed_id"]
        if seed_id in self.deployments:
            self.reallocate(seed_id, payload.get("allocation") or {})

    def _on_seed_message(self, seed_id: str, message: BusMessage) -> None:
        deployment = self.deployments.get(seed_id)
        if deployment is None:
            return
        payload = message.payload
        source_machine = ""
        value = payload
        if isinstance(payload, dict) and "__from_machine__" in payload:
            source_machine = payload["__from_machine__"]
            value = payload["value"]
        elif isinstance(payload, dict) and "value" in payload \
                and "__harvester__" in payload:
            value = payload["value"]
        cpu_cost, ctx = seed_soil_cpu_cost(self.config)
        delay = self.switch.cpu.charge_work(
            deployment.event_cpu_s + cpu_cost, context_switches=ctx)
        self.sim.schedule(
            delay, self._fire_recv, seed_id, value, source_machine,
            label=f"recv {seed_id}", cost_key=self._recv_cost_key)

    def _fire_recv(self, seed_id: str, value: Any,
                   source_machine: str) -> None:
        deployment = self.deployments.get(seed_id)
        if deployment is None:
            return
        deployment.events_delivered += 1
        self._m_events.inc()
        deployment.instance.fire_recv(value, source_machine=source_machine)

    # ------------------------------------------------------------------
    # Power state (fault tolerance / ops)
    # ------------------------------------------------------------------
    def power_off(self) -> None:
        """Crash the switch: seeds, timers, standing load, and in-flight
        control traffic are all lost; only off-switch checkpoints survive.
        The soil goes silent on the bus (no acks, no heartbeats) until
        :meth:`power_on`."""
        if self.failed:
            return
        self.failed = True
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant("power-off", track=self._track, cat="lifecycle",
                           args={"seeds_lost": len(self.deployments)})
        for deployment in list(self.deployments.values()):
            self._disarm_triggers(deployment)
            self.bus.unregister(self._seed_endpoint(deployment.seed_id))
        self.deployments.clear()
        self._poll_groups.clear()
        self._memberships.clear()
        self._cpu_load_seeds.clear()
        self._pcie_rates.clear()
        self._pcie_subject_rates.clear()
        self._g_seeds.set(0)
        self._poll_cache.clear()
        self.channel.reset()
        self.switch.cpu.clear_all_standing()
        self.switch.pcie.unregister_poller("soil")

    def power_on(self) -> None:
        """Bring a powered-off switch back; it resumes empty (deploys and
        heartbeats restart it into service)."""
        self.failed = False
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant("power-on", track=self._track, cat="lifecycle")

    # ------------------------------------------------------------------
    # Transitions & external code
    # ------------------------------------------------------------------
    def add_transition_listener(
            self, listener: Callable[[str, str, str], None]) -> None:
        """listener(seed_id, old_state, new_state)"""
        self._transition_listeners.append(listener)

    def on_transition(self, deployment: SeedDeployment, old_state: str,
                      new_state: str) -> None:
        for listener in self._transition_listeners:
            listener(deployment.seed_id, old_state, new_state)

    def register_external(self, command: str, fn: Callable[[Any], Any],
                          cpu_cost_s: float = 0.0) -> None:
        """Make an external program available to seeds' exec() calls."""
        self.externals[command] = fn
        self.external_costs[command] = cpu_cost_s

    def exec_external(self, deployment: SeedDeployment, command: str,
                      arg: Any) -> Any:
        fn = self.externals.get(command)
        if fn is None:
            raise DeploymentError(
                f"exec({command!r}): no such external program on switch "
                f"{self.switch.switch_id}")
        cost = self.external_costs.get(command, 0.0)
        if cost:
            as_process = self.config.execution_mode is ExecutionMode.PROCESS
            self.switch.cpu.charge_work(
                cost, context_switches=2 if as_process else 0)
        return fn(arg)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_seeds(self) -> int:
        return len(self.deployments)

    def resource_usage(self) -> Dict[str, float]:
        """Soil's own view of allocated resources (for seeder telemetry)."""
        usage = {r: 0.0 for r in self.resource_types}
        for deployment in self.deployments.values():
            for r in self.resource_types:
                usage[r] += deployment.allocation.get(r, 0.0)
        return usage


def _flat_decl(compiled: CompiledMachine):
    """Synthetic MachineDecl view of a flattened machine (for ConstEnv)."""
    from repro.almanac import astnodes as ast
    return ast.MachineDecl(
        name=compiled.name, placements=compiled.placements,
        var_decls=compiled.var_decls, states=[], events=[])
