"""The seeder: FARM's centralized M&M control instance (SII-C-b).

The seeder compiles submitted Almanac tasks, resolves placement against
the SDN controller, runs the global placement optimizer, and reconciles
the network to the optimizer's output: deploying, reallocating, migrating,
and undeploying seeds.  It also provides the routing fabric for
seed <-> seed and harvester <-> seed messages.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.almanac.analysis import encode_polling_subjects
from repro.almanac.compiler import MachineBlueprint, compile_machine
from repro.almanac.parser import parse
from repro.almanac.poly import LinPoly
from repro.errors import DeploymentError
from repro.net.controller import SdnController
from repro.placement.heuristic import solve_heuristic
from repro.placement.incremental import FULL_RESOLVE_ENV, solve_incremental
from repro.placement.milp import solve_milp
from repro.placement.model import (
    PlacementProblem,
    PlacementSolution,
    PollDemand,
    SeedSpec,
    TaskSpec,
)
from repro.core.comm import (
    BusMessage,
    ControlBus,
    SoilCommConfig,
    estimate_size_bytes,
)
from repro.core.reliable import ReliableEndpoint, RetryPolicy
from repro.core.soil import Soil
from repro.core.task import TaskDefinition
from repro.sim.engine import Simulator
from repro.switchsim.chassis import RESOURCE_TYPES, SwitchFleet
from repro.switchsim.stratum import driver_for

#: Soil-side install overhead a deploy command pays on top of the bus
#: latency (unpack + validate + arm; the historic 1 ms control latency).
DEPLOY_LATENCY_S = 1e-3

#: State-transfer bandwidth between switches during migration (B/s).
MIGRATION_BANDWIDTH_BPS = 12.5e6

#: Fixed overhead per migration (snapshot + resume bookkeeping).
MIGRATION_OVERHEAD_S = 2e-3


@dataclass
class ManagedSeed:
    """The seeder's bookkeeping for one logical seed."""

    seed_id: str
    task_id: str
    machine_name: str
    blueprint: MachineBlueprint
    candidates: Tuple[int, ...]
    event_cpu_s: float
    switch: Optional[int] = None  # None until deployed
    allocation: Dict[str, float] = field(default_factory=dict)
    current_state: str = ""
    migrating: bool = False
    #: While migrating: the switch the seed left, so a dead-lettered
    #: deploy at the target can roll the seed back instead of stranding it.
    migration_source: Optional[int] = None


@dataclass
class ActiveTask:
    definition: TaskDefinition
    blueprints: Dict[str, MachineBlueprint]
    seeds: List[ManagedSeed]


class Seeder:
    """Central control: task lifecycle + global placement."""

    ENDPOINT = "seeder"

    def __init__(self, sim: Simulator, controller: SdnController,
                 fleet: SwitchFleet, bus: ControlBus,
                 soil_config: Optional[SoilCommConfig] = None,
                 solver: str = "heuristic",
                 resource_types=RESOURCE_TYPES,
                 milp_time_limit_s: float = 10.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 incremental: bool = True) -> None:
        if solver not in ("heuristic", "milp"):
            raise DeploymentError(f"unknown solver {solver!r}")
        self.sim = sim
        self.controller = controller
        self.fleet = fleet
        self.bus = bus
        self.solver = solver
        #: Scoped re-solves (`reoptimize(scope=)`) warm-start from the
        #: live placement instead of re-solving from scratch; see
        #: :mod:`repro.placement.incremental`.  ``REPRO_FULL_RESOLVE=1``
        #: overrides this at runtime.
        self.incremental_enabled = incremental
        self.milp_time_limit_s = milp_time_limit_s
        self.resource_types = tuple(resource_types)
        self.retry_policy = retry_policy or RetryPolicy()
        self.soils: Dict[int, Soil] = {}
        for switch in fleet:
            soil = Soil(sim, switch, driver_for(switch), bus,
                        config=soil_config, resource_types=resource_types,
                        retry_policy=self.retry_policy)
            soil.seed_message_router = self._route_seed_message
            soil.add_transition_listener(self._make_transition_listener(soil))
            self.soils[switch.switch_id] = soil
        self.tasks: Dict[str, ActiveTask] = {}
        #: Switches currently considered dead (fault-tolerance manager);
        #: they contribute no capacity and host no seeds.
        self.failed_switches: set = set()
        #: Switches administratively drained (remediation `cordon`): same
        #: placement exclusion as failed, but the soil keeps running so
        #: in-flight work lands and the drain is graceful.
        self.cordoned_switches: set = set()
        self.last_solution: Optional[PlacementSolution] = None
        #: Reliable command channel: deploy/migrate/undeploy commands out,
        #: soil lifecycle reports (deployed/undeployed/...) back in.
        self.channel = ReliableEndpoint(
            bus, sim, self.ENDPOINT, self._on_soil_event,
            policy=self.retry_policy)
        # Observability: shared with the bus (and thus with every soil).
        self.metrics = bus.metrics
        self.tracer = bus.tracer
        self._m_optimizations = self.metrics.counter(
            "farm_seeder_optimizations_total",
            "Global placement optimizations run.")
        self._m_migrations = self.metrics.counter(
            "farm_seeder_migrations_total",
            "Seed migrations initiated (SV-B).")
        self._m_lost_commands = self.metrics.counter(
            "farm_seeder_lost_commands_total",
            "Commands that exhausted every retransmission.")
        self._m_migration_rollbacks = self.metrics.counter(
            "farm_seeder_migration_rollbacks_total",
            "Migrations rolled back to their source after a dead-lettered "
            "deploy at the target.")
        self._g_tasks = self.metrics.gauge(
            "farm_seeder_tasks", "Tasks currently active.")

    # -- legacy counter attributes (now registry-backed) -------------------
    @property
    def optimizations_run(self) -> int:
        return int(self._m_optimizations.value)

    @property
    def migrations_performed(self) -> int:
        return int(self._m_migrations.value)

    @property
    def lost_commands(self) -> int:
        """Commands that exhausted every retransmission (dead letters)."""
        return int(self._m_lost_commands.value)

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def submit(self, definition: TaskDefinition,
               reoptimize: bool = True) -> ActiveTask:
        """Compile and register a task; optionally place it immediately."""
        if definition.task_id in self.tasks:
            raise DeploymentError(
                f"task {definition.task_id!r} already submitted")
        program = parse(definition.source)
        # Static semantic validation before anything is shipped to a soil.
        from repro.almanac.typecheck import assert_well_formed
        assert_well_formed(program)
        blueprints: Dict[str, MachineBlueprint] = {}
        seeds: List[ManagedSeed] = []
        for config in definition.machines:
            blueprint = compile_machine(
                program, config.machine_name, self.controller,
                externals=config.externals,
                resource_names=self.resource_types)
            blueprints[config.machine_name] = blueprint
            for index, site in enumerate(blueprint.sites):
                seed_id = (f"{definition.task_id}/"
                           f"{config.machine_name}#{index}")
                seeds.append(ManagedSeed(
                    seed_id=seed_id, task_id=definition.task_id,
                    machine_name=config.machine_name, blueprint=blueprint,
                    candidates=site.switches,
                    event_cpu_s=config.event_cpu_s,
                    current_state=blueprint.initial_state))
        task = ActiveTask(definition=definition, blueprints=blueprints,
                          seeds=seeds)
        self.tasks[definition.task_id] = task
        self._g_tasks.set(len(self.tasks))
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"compile {definition.task_id}", track="seeder",
                           cat="lifecycle",
                           args={"task": definition.task_id,
                                 "seeds": len(seeds)})
        if definition.harvester is not None:
            definition.harvester.attach(self.sim, self.bus,
                                        definition.task_id, self)
        if reoptimize:
            self.reoptimize()
        return task

    def remove_task(self, task_id: str, reoptimize: bool = True) -> None:
        task = self.tasks.pop(task_id, None)
        if task is None:
            raise DeploymentError(f"unknown task {task_id!r}")
        self._g_tasks.set(len(self.tasks))
        for seed in task.seeds:
            if self._is_live(seed):
                self._send_command(seed.switch, {
                    "cmd": "undeploy", "seed_id": seed.seed_id,
                    "reason": "remove"})
            seed.switch = None
            seed.migrating = False
        if task.definition.harvester is not None:
            task.definition.harvester.detach()
        if reoptimize and self.tasks:
            self.reoptimize()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def cordon(self, switch_id: int) -> bool:
        """Administratively drain a switch: exclude it from placement as
        if failed, but leave its soil running so the exit is graceful.
        The caller follows up with :meth:`reoptimize` (usually scoped to
        the switch) to actually move the seeds off.  Returns True if the
        switch was newly cordoned.
        """
        if switch_id not in self.soils \
                or switch_id in self.cordoned_switches:
            return False
        self.cordoned_switches.add(switch_id)
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"cordon sw{switch_id}", track="seeder",
                           cat="placement")
        return True

    def uncordon(self, switch_id: int) -> bool:
        """Return a drained switch to the placement pool."""
        if switch_id not in self.cordoned_switches:
            return False
        self.cordoned_switches.discard(switch_id)
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"uncordon sw{switch_id}", track="seeder",
                           cat="placement")
        return True

    def excluded_switches(self) -> set:
        """Switches contributing no capacity: failed or cordoned."""
        return self.failed_switches | self.cordoned_switches

    def build_problem(self, scope: Optional[set] = None
                      ) -> PlacementProblem:
        """Snapshot all active tasks into one optimization problem.

        Each seed's utility is that of its *current* state — a seed sitting
        in a high-utility alarm state is worth keeping resourced.

        ``scope`` restricts the re-placement blast radius: seeds currently
        living on a switch *outside* ``scope`` are pinned where they are
        (single-candidate), so only seeds on impacted switches — plus any
        undeployed stragglers — may move.  The capacity picture stays
        global, so the pinned seeds' consumption is still accounted for.
        """
        excluded = self.excluded_switches()
        task_specs: List[TaskSpec] = []
        previous_placement: Dict[str, int] = {}
        previous_allocations: Dict[str, Dict[str, float]] = {}
        for task in self.tasks.values():
            specs: List[SeedSpec] = []
            for seed in task.seeds:
                # A failed switch contributes neither capacity nor
                # candidates; a seed pinned exclusively to dead switches
                # is parked (excluded) rather than sinking its whole task
                # -- availability over strict C1 during failures.
                alive = tuple(n for n in seed.candidates
                              if n not in excluded)
                if not alive:
                    continue
                if (scope is not None and seed.switch is not None
                        and seed.switch not in scope
                        and seed.switch not in excluded):
                    # Outside the blast radius: stay put.
                    alive = (seed.switch,)
                utility = seed.blueprint.utility_for_state(
                    seed.current_state or seed.blueprint.initial_state)
                demands = self._poll_demands(seed)
                specs.append(SeedSpec(
                    seed_id=seed.seed_id, task_id=seed.task_id,
                    candidates=alive, utility=utility,
                    poll_demands=demands))
                if seed.switch is not None \
                        and seed.switch not in excluded:
                    previous_placement[seed.seed_id] = seed.switch
                    previous_allocations[seed.seed_id] = dict(seed.allocation)
            if specs:
                task_specs.append(TaskSpec(
                    task_id=task.definition.task_id, seeds=specs,
                    mandatory=task.definition.mandatory))
        available = {
            switch.switch_id: switch.available_resources()
            for switch in self.fleet
            if switch.switch_id not in excluded}
        # alpha_poll converts polling demand (subjects/s) into PCIe units
        # (KB/s): one counter read moves BYTES_PER_COUNTER bytes (SIV-B-b's
        # architecture-dependent coefficient).
        from repro.switchsim.chassis import PCIE_UNIT_BPS
        from repro.switchsim.pcie import BYTES_PER_COUNTER
        alpha = {switch.switch_id: BYTES_PER_COUNTER / PCIE_UNIT_BPS
                 for switch in self.fleet}
        return PlacementProblem(
            tasks=task_specs, available=available,
            resource_types=self.resource_types,
            alpha_poll=alpha,
            previous_placement=previous_placement,
            previous_allocations=previous_allocations)

    def _poll_demands(self, seed: ManagedSeed) -> Tuple[PollDemand, ...]:
        demands = []
        num_ports = self._reference_num_ports(seed)
        for info in seed.blueprint.poll_vars:
            if info.kind == "time":
                continue
            subjects = encode_polling_subjects(info.what, num_ports)
            try:
                inv = info.ival.inverse_linear()
            except Exception:
                # Non-linear inverse: pin to the interval at zero resources.
                interval = max(info.ival.evaluate(
                    {r: 0.0 for r in self.resource_types}), 1e-3)
                inv = LinPoly.constant(1.0 / interval)
            demands.append(PollDemand(subject=subjects, inv_interval=inv,
                                      weight=float(max(len(subjects), 1))))
        return tuple(demands)

    def _reference_num_ports(self, seed: ManagedSeed) -> int:
        switch = self.fleet.get(seed.candidates[0])
        return switch.asic.num_ports

    def reoptimize(self, restore_snapshots: Optional[Mapping[str, Any]]
                   = None, scope: Optional[set] = None
                   ) -> PlacementSolution:
        """Run the global placement optimizer and reconcile the network.

        ``restore_snapshots`` maps seed ids to checkpointed inner state:
        a seed deployed fresh by this reconciliation resumes from its
        snapshot instead of restarting (fault-tolerance failover).
        ``scope`` limits which switches' seeds may move (targeted
        re-solve; see :meth:`build_problem`).
        """
        problem = self.build_problem(scope=scope)
        use_incremental = (scope is not None and self.incremental_enabled
                           and os.environ.get(FULL_RESOLVE_ENV) != "1")
        if self.solver == "milp":
            if use_incremental and problem.previous_placement:
                # No true HiGHS MIP-start: warm-start by freezing the
                # out-of-scope seeds to their current switch.
                incumbent = self._incumbent_solution(problem)
                scope_set = set(scope)
                frozen = {sid for sid, n
                          in problem.previous_placement.items()
                          if n not in scope_set}
                solution = solve_milp(problem,
                                      time_limit_s=self.milp_time_limit_s,
                                      registry=self.metrics,
                                      warm_start=incumbent,
                                      frozen_seeds=frozen)
                solution.info.setdefault("incremental", True)
                solution.info.setdefault("dirty_switches", len(scope_set))
            else:
                solution = solve_milp(problem,
                                      time_limit_s=self.milp_time_limit_s,
                                      registry=self.metrics)
        elif use_incremental:
            solution = solve_incremental(
                problem, self._incumbent_solution(problem),
                scope=set(scope), registry=self.metrics)
        else:
            solution = solve_heuristic(problem, registry=self.metrics)
        self._m_optimizations.inc()
        self.last_solution = solution
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant("reoptimize", track="seeder", cat="placement",
                           args={"solver": self.solver,
                                 "placed": len(solution.placement),
                                 "objective": solution.objective,
                                 "scope": sorted(scope) if scope else None,
                                 "incremental": bool(
                                     solution.info.get("incremental")),
                                 "dirty": solution.info.get(
                                     "dirty_seeds")})
        self._reconcile(solution, restore_snapshots or {})
        return solution

    def _incumbent_solution(self, problem: PlacementProblem
                            ) -> PlacementSolution:
        """The live placement as a warm-start incumbent for ``problem``."""
        return PlacementSolution(
            placement=dict(problem.previous_placement),
            allocations={sid: dict(alloc) for sid, alloc
                         in problem.previous_allocations.items()},
            objective=0.0, solver="incumbent")

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def _is_live(self, seed: ManagedSeed) -> bool:
        """Is the seed actually running on its soil (deploy landed)?"""
        return (seed.switch is not None
                and seed.seed_id in self.soils[seed.switch].deployments)

    def _reconcile(self, solution: PlacementSolution,
                   restore_snapshots: Optional[Mapping[str, Any]] = None
                   ) -> None:
        restore_snapshots = restore_snapshots or {}
        for task in self.tasks.values():
            for seed in task.seeds:
                if seed.migrating:
                    # A migration is mid-flight; touching the seed now
                    # would race its undeploy/deploy pair.  The next
                    # reconciliation sees the settled state.
                    continue
                target = solution.placement.get(seed.seed_id)
                allocation = solution.allocations.get(seed.seed_id, {})
                if target is None:
                    if self._is_live(seed):
                        self._send_command(seed.switch, {
                            "cmd": "undeploy", "seed_id": seed.seed_id,
                            "reason": "displaced"})
                    seed.switch = None
                    seed.allocation = {}
                elif seed.switch is None:
                    self._deploy(task, seed, target, allocation,
                                 snapshot=restore_snapshots.get(
                                     seed.seed_id))
                elif seed.switch != target:
                    if self._is_live(seed):
                        self._migrate(task, seed, target, allocation)
                    else:
                        # Deploy command still in flight: retarget the
                        # bookkeeping and race it — whichever lands as a
                        # stale copy is swept by the deployed-event check.
                        seed.switch = target
                        seed.allocation = dict(allocation)
                        self._deploy(task, seed, target, allocation,
                                     snapshot=restore_snapshots.get(
                                         seed.seed_id))
                else:
                    if not _alloc_close(seed.allocation, allocation):
                        seed.allocation = dict(allocation)
                        if self._is_live(seed):
                            self._send_command(target, {
                                "cmd": "reallocate",
                                "seed_id": seed.seed_id,
                                "allocation": dict(allocation)})
        self._sweep_stale_deployments()

    def _sweep_stale_deployments(self) -> None:
        """Undeploy seed copies running where the bookkeeping says they
        should not be (split-brain cleanup after partitions heal)."""
        expected: Dict[str, Optional[int]] = {}
        migrating: set = set()
        for task in self.tasks.values():
            for seed in task.seeds:
                expected[seed.seed_id] = seed.switch
                if seed.migrating:
                    migrating.add(seed.seed_id)
        for switch_id, soil in self.soils.items():
            if soil.failed:
                continue
            for seed_id in list(soil.deployments):
                if seed_id in migrating:
                    continue  # its undeploy/deploy pair is in flight
                if expected.get(seed_id) != switch_id:
                    self._send_command(switch_id, {
                        "cmd": "undeploy", "seed_id": seed_id,
                        "reason": "stale"})

    def _deploy(self, task: ActiveTask, seed: ManagedSeed, target: int,
                allocation: Mapping[str, float],
                snapshot: Optional[Mapping[str, Any]] = None) -> None:
        seed.switch = target
        seed.allocation = dict(allocation)
        self._send_deploy(seed, target, snapshot)

    def _migrate(self, task: ActiveTask, seed: ManagedSeed, target: int,
                 allocation: Mapping[str, float]) -> None:
        """SV-B: undeploy at the source (its reply carries the snapshot),
        transfer the state, deploy at the destination, resume."""
        old_switch = seed.switch
        seed.migrating = True
        seed.migration_source = old_switch
        self._m_migrations.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"migrate {seed.seed_id}", track="seeder",
                           cat="lifecycle",
                           args={"trace_id": seed.seed_id,
                                 "from": old_switch, "to": target})
        seed.switch = target
        seed.allocation = dict(allocation)
        self._send_command(old_switch, {
            "cmd": "undeploy", "seed_id": seed.seed_id,
            "reason": "migrate", "dest": target})

    # ------------------------------------------------------------------
    # Command channel (reliable seeder -> soil control plane)
    # ------------------------------------------------------------------
    def _send_command(self, switch_id: int,
                      payload: Dict[str, Any]) -> None:
        self.channel.send(f"soil/{switch_id}", payload,
                          on_dead=self._on_command_dead_letter)

    def _send_deploy(self, seed: ManagedSeed, target: int,
                     snapshot: Optional[Mapping[str, Any]]) -> None:
        config = self._config_for(seed)
        if config is None:
            return  # task vanished while the command was being prepared
        payload = {
            "cmd": "deploy", "seed_id": seed.seed_id,
            "task_id": seed.task_id,
            "program_xml": seed.blueprint.xml_payload,
            "machine_name": seed.machine_name,
            "externals": config.externals,
            "allocation": dict(seed.allocation),
            "snapshot": snapshot, "event_cpu_s": config.event_cpu_s}
        self.channel.send(f"soil/{target}", payload,
                          on_dead=self._on_command_dead_letter,
                          extra_latency_s=DEPLOY_LATENCY_S)

    def _config_for(self, seed: ManagedSeed):
        task = self.tasks.get(seed.task_id)
        if task is None:
            return None
        return next(c for c in task.definition.machines
                    if c.machine_name == seed.machine_name)

    def _find_seed(self, seed_id: Optional[str]) -> Optional[ManagedSeed]:
        if seed_id is None:
            return None
        for task in self.tasks.values():
            for seed in task.seeds:
                if seed.seed_id == seed_id:
                    return seed
        return None

    def _on_soil_event(self, message: BusMessage) -> None:
        """Soil lifecycle reports arriving on the reliable channel."""
        payload = message.payload
        if not isinstance(payload, dict) or "event" not in payload:
            return
        event = payload["event"]
        seed = self._find_seed(payload.get("seed_id"))
        if event == "deployed":
            self._on_deployed(seed, payload)
        elif event == "undeployed":
            self._on_undeployed(seed, payload)
        elif event == "deploy-failed":
            if seed is not None and seed.switch == payload.get("switch"):
                seed.switch = None
                seed.allocation = {}
                seed.migrating = False
                seed.migration_source = None

    def _on_deployed(self, seed: Optional[ManagedSeed],
                     payload: Dict[str, Any]) -> None:
        switch = payload.get("switch")
        seed_id = payload.get("seed_id")
        if seed is None or seed.switch != switch:
            # Task removed or seed retargeted while the command flew:
            # the copy that just started is stale — take it down.
            self._send_command(switch, {
                "cmd": "undeploy", "seed_id": seed_id, "reason": "stale"})
            return
        seed.current_state = payload.get("state") or seed.current_state
        seed.migrating = False
        seed.migration_source = None
        # The allocation may have been re-optimized while the deploy was
        # in flight; converge the live deployment to the bookkeeping.
        soil = self.soils.get(switch)
        live = soil.deployments.get(seed_id) if soil is not None else None
        if live is not None and not _alloc_close(live.allocation,
                                                 seed.allocation):
            self._send_command(switch, {
                "cmd": "reallocate", "seed_id": seed_id,
                "allocation": dict(seed.allocation)})

    def _on_undeployed(self, seed: Optional[ManagedSeed],
                       payload: Dict[str, Any]) -> None:
        if payload.get("reason") != "migrate" or seed is None:
            return
        snapshot = payload.get("snapshot")
        state_size = estimate_size_bytes(snapshot)
        transfer = (MIGRATION_OVERHEAD_S
                    + state_size / MIGRATION_BANDWIDTH_BPS)
        self.sim.schedule(transfer, self._finish_migration, seed, snapshot,
                          label=f"migrate {seed.seed_id} "
                                f"->{seed.switch}",
                          cost_key=("seeder", seed.switch, seed.seed_id,
                                    "migrate"))

    def _finish_migration(self, seed: ManagedSeed,
                          snapshot: Optional[Mapping[str, Any]]) -> None:
        if seed.switch is None or self._find_seed(seed.seed_id) is None:
            seed.migrating = False
            return  # task removed while the state was in transit
        if self._is_live(seed):
            seed.migrating = False
            return
        self._send_deploy(seed, seed.switch, snapshot)

    def _on_command_dead_letter(self, dst: str, payload: Any,
                                attempts: int) -> None:
        """A command exhausted its retries (destination dead or
        partitioned beyond the retry horizon)."""
        self._m_lost_commands.inc()
        if not isinstance(payload, dict):
            return
        seed = self._find_seed(payload.get("seed_id"))
        if seed is None:
            return
        cmd = payload.get("cmd")
        if cmd == "deploy":
            try:
                switch = int(dst.rsplit("/", 1)[1])
            except (ValueError, IndexError):
                return
            if seed.switch == switch and not self._is_live(seed):
                source = seed.migration_source
                seed.migrating = False
                seed.migration_source = None
                if self._usable_rollback_target(source, switch):
                    # Mid-migration: the target never answered, but the
                    # source is still fine — roll the seed back with the
                    # snapshot the dead command carried, instead of
                    # stranding it undeployed until some future
                    # reoptimize.
                    seed.switch = source
                    self._m_migration_rollbacks.inc()
                    tracer = self.tracer
                    if tracer.enabled:
                        tracer.instant(
                            f"migration-rollback {seed.seed_id}",
                            track="seeder", cat="lifecycle",
                            args={"trace_id": seed.seed_id,
                                  "from": switch, "to": source})
                    self._send_deploy(seed, source,
                                      payload.get("snapshot"))
                else:
                    # Give up on this placement; the fault-tolerance
                    # manager (or the next reoptimize) finds the seed a
                    # new home — nudge one so it isn't stranded forever.
                    seed.switch = None
                    seed.allocation = {}
                    self.sim.schedule(0.0, self._rescue_reoptimize,
                                      label=f"rescue {seed.seed_id}")
        elif cmd == "undeploy" and payload.get("reason") == "migrate":
            # The source is unreachable: its copy of the state is lost.
            # Restart the seed at its target rather than blocking forever.
            seed.migrating = False
            seed.migration_source = None
            if seed.switch is not None and not self._is_live(seed):
                self._send_deploy(seed, seed.switch, None)

    def _usable_rollback_target(self, source: Optional[int],
                                target: int) -> bool:
        if source is None or source == target:
            return False
        if source in self.failed_switches \
                or source in self.cordoned_switches:
            return False
        soil = self.soils.get(source)
        return soil is not None and not soil.failed

    def _rescue_reoptimize(self) -> None:
        """Re-place after a dead-lettered deploy left a seed homeless.

        Scheduled (not inline) so the dead-letter callback never
        re-enters the reliable channel mid-dispatch; skipped when a
        concurrent reconciliation already found the seed a home.
        """
        if any(seed.switch is None and not seed.migrating
               for task in self.tasks.values() for seed in task.seeds):
            self.reoptimize()

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------
    def _route_seed_message(self, src_seed_id: str, src_machine: str,
                            target_machine: str, dst: Optional[Any],
                            value: Any) -> None:
        """Deliver a seed's ``send x to M [@dst]`` (SIII-A-d)."""
        delivered = 0
        for task in self.tasks.values():
            for seed in task.seeds:
                if seed.machine_name != target_machine:
                    continue
                if seed.switch is None or seed.seed_id == src_seed_id:
                    continue
                if dst is not None and seed.switch != dst:
                    continue
                endpoint = f"seed/{seed.switch}/{seed.seed_id}"
                if not self.bus.is_registered(endpoint):
                    continue
                self.bus.send(
                    f"seed-route/{src_seed_id}", endpoint,
                    {"__from_machine__": src_machine, "value": value},
                    size_bytes=estimate_size_bytes(value))
                delivered += 1
        if delivered == 0 and dst is not None:
            raise DeploymentError(
                f"send from {src_seed_id!r}: no {target_machine!r} seed on "
                f"switch {dst!r}")

    def broadcast_to_seeds(self, task_id: str, machine: str,
                           dst: Optional[int], value: Any,
                           source: str) -> int:
        """Harvester -> seeds delivery (used by Harvester.send_to_seeds)."""
        task = self.tasks.get(task_id)
        if task is None:
            raise DeploymentError(f"unknown task {task_id!r}")
        sent = 0
        for seed in task.seeds:
            if seed.machine_name != machine or seed.switch is None:
                continue
            if dst is not None and seed.switch != dst:
                continue
            endpoint = f"seed/{seed.switch}/{seed.seed_id}"
            if not self.bus.is_registered(endpoint):
                continue
            self.bus.send(source, endpoint,
                          {"__harvester__": True, "value": value},
                          size_bytes=estimate_size_bytes(value))
            sent += 1
        return sent

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _make_transition_listener(self, soil: Soil):
        def listener(seed_id: str, old_state: str, new_state: str) -> None:
            for task in self.tasks.values():
                for seed in task.seeds:
                    if seed.seed_id == seed_id:
                        seed.current_state = new_state
                        return
        return listener

    def deployed_seed_count(self) -> int:
        return sum(soil.num_seeds for soil in self.soils.values())

    def seed_location(self, seed_id: str) -> Optional[int]:
        for task in self.tasks.values():
            for seed in task.seeds:
                if seed.seed_id == seed_id:
                    return seed.switch
        return None


def _alloc_close(a: Mapping[str, float], b: Mapping[str, float],
                 tol: float = 1e-9) -> bool:
    keys = set(a) | set(b)
    return all(abs(a.get(k, 0.0) - b.get(k, 0.0)) <= tol for k in keys)
