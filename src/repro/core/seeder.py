"""The seeder: FARM's centralized M&M control instance (SII-C-b).

The seeder compiles submitted Almanac tasks, resolves placement against
the SDN controller, runs the global placement optimizer, and reconciles
the network to the optimizer's output: deploying, reallocating, migrating,
and undeploying seeds.  It also provides the routing fabric for
seed <-> seed and harvester <-> seed messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.almanac.analysis import encode_polling_subjects
from repro.almanac.compiler import MachineBlueprint, compile_machine
from repro.almanac.parser import parse
from repro.almanac.poly import LinPoly
from repro.errors import DeploymentError
from repro.net.controller import SdnController
from repro.placement.heuristic import solve_heuristic
from repro.placement.milp import solve_milp
from repro.placement.model import (
    PlacementProblem,
    PlacementSolution,
    PollDemand,
    SeedSpec,
    TaskSpec,
)
from repro.core.comm import ControlBus, SoilCommConfig, estimate_size_bytes
from repro.core.soil import Soil
from repro.core.task import TaskDefinition
from repro.sim.engine import Simulator
from repro.switchsim.chassis import RESOURCE_TYPES, SwitchFleet
from repro.switchsim.stratum import driver_for

#: Control latency for a deploy command reaching a soil.
DEPLOY_LATENCY_S = 1e-3

#: State-transfer bandwidth between switches during migration (B/s).
MIGRATION_BANDWIDTH_BPS = 12.5e6

#: Fixed overhead per migration (snapshot + resume bookkeeping).
MIGRATION_OVERHEAD_S = 2e-3


@dataclass
class ManagedSeed:
    """The seeder's bookkeeping for one logical seed."""

    seed_id: str
    task_id: str
    machine_name: str
    blueprint: MachineBlueprint
    candidates: Tuple[int, ...]
    event_cpu_s: float
    switch: Optional[int] = None  # None until deployed
    allocation: Dict[str, float] = field(default_factory=dict)
    current_state: str = ""
    migrating: bool = False


@dataclass
class ActiveTask:
    definition: TaskDefinition
    blueprints: Dict[str, MachineBlueprint]
    seeds: List[ManagedSeed]


class Seeder:
    """Central control: task lifecycle + global placement."""

    def __init__(self, sim: Simulator, controller: SdnController,
                 fleet: SwitchFleet, bus: ControlBus,
                 soil_config: Optional[SoilCommConfig] = None,
                 solver: str = "heuristic",
                 resource_types=RESOURCE_TYPES,
                 milp_time_limit_s: float = 10.0) -> None:
        if solver not in ("heuristic", "milp"):
            raise DeploymentError(f"unknown solver {solver!r}")
        self.sim = sim
        self.controller = controller
        self.fleet = fleet
        self.bus = bus
        self.solver = solver
        self.milp_time_limit_s = milp_time_limit_s
        self.resource_types = tuple(resource_types)
        self.soils: Dict[int, Soil] = {}
        for switch in fleet:
            soil = Soil(sim, switch, driver_for(switch), bus,
                        config=soil_config, resource_types=resource_types)
            soil.seed_message_router = self._route_seed_message
            soil.add_transition_listener(self._make_transition_listener(soil))
            self.soils[switch.switch_id] = soil
        self.tasks: Dict[str, ActiveTask] = {}
        #: Switches currently considered dead (fault-tolerance manager);
        #: they contribute no capacity and host no seeds.
        self.failed_switches: set = set()
        self.optimizations_run = 0
        self.migrations_performed = 0
        self.last_solution: Optional[PlacementSolution] = None
        bus.register("seeder", lambda msg: None)

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def submit(self, definition: TaskDefinition,
               reoptimize: bool = True) -> ActiveTask:
        """Compile and register a task; optionally place it immediately."""
        if definition.task_id in self.tasks:
            raise DeploymentError(
                f"task {definition.task_id!r} already submitted")
        program = parse(definition.source)
        # Static semantic validation before anything is shipped to a soil.
        from repro.almanac.typecheck import assert_well_formed
        assert_well_formed(program)
        blueprints: Dict[str, MachineBlueprint] = {}
        seeds: List[ManagedSeed] = []
        for config in definition.machines:
            blueprint = compile_machine(
                program, config.machine_name, self.controller,
                externals=config.externals,
                resource_names=self.resource_types)
            blueprints[config.machine_name] = blueprint
            for index, site in enumerate(blueprint.sites):
                seed_id = (f"{definition.task_id}/"
                           f"{config.machine_name}#{index}")
                seeds.append(ManagedSeed(
                    seed_id=seed_id, task_id=definition.task_id,
                    machine_name=config.machine_name, blueprint=blueprint,
                    candidates=site.switches,
                    event_cpu_s=config.event_cpu_s,
                    current_state=blueprint.initial_state))
        task = ActiveTask(definition=definition, blueprints=blueprints,
                          seeds=seeds)
        self.tasks[definition.task_id] = task
        if definition.harvester is not None:
            definition.harvester.attach(self.sim, self.bus,
                                        definition.task_id, self)
        if reoptimize:
            self.reoptimize()
        return task

    def remove_task(self, task_id: str, reoptimize: bool = True) -> None:
        task = self.tasks.pop(task_id, None)
        if task is None:
            raise DeploymentError(f"unknown task {task_id!r}")
        for seed in task.seeds:
            if self._is_live(seed):
                self.soils[seed.switch].undeploy(seed.seed_id)
            seed.switch = None
        if task.definition.harvester is not None:
            task.definition.harvester.detach()
        if reoptimize and self.tasks:
            self.reoptimize()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def build_problem(self) -> PlacementProblem:
        """Snapshot all active tasks into one optimization problem.

        Each seed's utility is that of its *current* state — a seed sitting
        in a high-utility alarm state is worth keeping resourced.
        """
        task_specs: List[TaskSpec] = []
        previous_placement: Dict[str, int] = {}
        previous_allocations: Dict[str, Dict[str, float]] = {}
        for task in self.tasks.values():
            specs: List[SeedSpec] = []
            for seed in task.seeds:
                # A failed switch contributes neither capacity nor
                # candidates; a seed pinned exclusively to dead switches
                # is parked (excluded) rather than sinking its whole task
                # -- availability over strict C1 during failures.
                alive = tuple(n for n in seed.candidates
                              if n not in self.failed_switches)
                if not alive:
                    continue
                utility = seed.blueprint.utility_for_state(
                    seed.current_state or seed.blueprint.initial_state)
                demands = self._poll_demands(seed)
                specs.append(SeedSpec(
                    seed_id=seed.seed_id, task_id=seed.task_id,
                    candidates=alive, utility=utility,
                    poll_demands=demands))
                if seed.switch is not None                         and seed.switch not in self.failed_switches:
                    previous_placement[seed.seed_id] = seed.switch
                    previous_allocations[seed.seed_id] = dict(seed.allocation)
            if specs:
                task_specs.append(TaskSpec(
                    task_id=task.definition.task_id, seeds=specs,
                    mandatory=task.definition.mandatory))
        available = {
            switch.switch_id: switch.available_resources()
            for switch in self.fleet
            if switch.switch_id not in self.failed_switches}
        # alpha_poll converts polling demand (subjects/s) into PCIe units
        # (KB/s): one counter read moves BYTES_PER_COUNTER bytes (SIV-B-b's
        # architecture-dependent coefficient).
        from repro.switchsim.chassis import PCIE_UNIT_BPS
        from repro.switchsim.pcie import BYTES_PER_COUNTER
        alpha = {switch.switch_id: BYTES_PER_COUNTER / PCIE_UNIT_BPS
                 for switch in self.fleet}
        return PlacementProblem(
            tasks=task_specs, available=available,
            resource_types=self.resource_types,
            alpha_poll=alpha,
            previous_placement=previous_placement,
            previous_allocations=previous_allocations)

    def _poll_demands(self, seed: ManagedSeed) -> Tuple[PollDemand, ...]:
        demands = []
        num_ports = self._reference_num_ports(seed)
        for info in seed.blueprint.poll_vars:
            if info.kind == "time":
                continue
            subjects = encode_polling_subjects(info.what, num_ports)
            try:
                inv = info.ival.inverse_linear()
            except Exception:
                # Non-linear inverse: pin to the interval at zero resources.
                interval = max(info.ival.evaluate(
                    {r: 0.0 for r in self.resource_types}), 1e-3)
                inv = LinPoly.constant(1.0 / interval)
            demands.append(PollDemand(subject=subjects, inv_interval=inv,
                                      weight=float(max(len(subjects), 1))))
        return tuple(demands)

    def _reference_num_ports(self, seed: ManagedSeed) -> int:
        switch = self.fleet.get(seed.candidates[0])
        return switch.asic.num_ports

    def reoptimize(self, restore_snapshots: Optional[Mapping[str, Any]]
                   = None) -> PlacementSolution:
        """Run the global placement optimizer and reconcile the network.

        ``restore_snapshots`` maps seed ids to checkpointed inner state:
        a seed deployed fresh by this reconciliation resumes from its
        snapshot instead of restarting (fault-tolerance failover).
        """
        problem = self.build_problem()
        if self.solver == "milp":
            solution = solve_milp(problem,
                                  time_limit_s=self.milp_time_limit_s)
        else:
            solution = solve_heuristic(problem)
        self.optimizations_run += 1
        self.last_solution = solution
        self._reconcile(solution, restore_snapshots or {})
        return solution

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def _is_live(self, seed: ManagedSeed) -> bool:
        """Is the seed actually running on its soil (deploy landed)?"""
        return (seed.switch is not None
                and seed.seed_id in self.soils[seed.switch].deployments)

    def _reconcile(self, solution: PlacementSolution,
                   restore_snapshots: Optional[Mapping[str, Any]] = None
                   ) -> None:
        restore_snapshots = restore_snapshots or {}
        for task in self.tasks.values():
            for seed in task.seeds:
                target = solution.placement.get(seed.seed_id)
                allocation = solution.allocations.get(seed.seed_id, {})
                if target is None:
                    if self._is_live(seed):
                        self.soils[seed.switch].undeploy(seed.seed_id)
                    seed.switch = None
                    seed.allocation = {}
                elif seed.switch is None:
                    self._deploy(task, seed, target, allocation,
                                 snapshot=restore_snapshots.get(
                                     seed.seed_id))
                elif seed.switch != target:
                    if self._is_live(seed):
                        self._migrate(task, seed, target, allocation)
                    else:
                        # Deploy command still in flight: redirect it (the
                        # deferred deploy reads seed.switch at fire time).
                        seed.switch = target
                        seed.allocation = dict(allocation)
                else:
                    if not _alloc_close(seed.allocation, allocation):
                        seed.allocation = dict(allocation)
                        if self._is_live(seed):
                            self.soils[target].reallocate(seed.seed_id,
                                                          allocation)

    def _deploy(self, task: ActiveTask, seed: ManagedSeed, target: int,
                allocation: Mapping[str, float],
                snapshot: Optional[Mapping[str, Any]] = None) -> None:
        config = next(c for c in task.definition.machines
                      if c.machine_name == seed.machine_name)
        seed.switch = target
        seed.allocation = dict(allocation)

        def do_deploy() -> None:
            if seed.switch is None:
                return  # task undeployed while the command was in flight
            soil = self.soils[seed.switch]
            if seed.seed_id in soil.deployments:
                return
            deployment = soil.deploy(
                seed_id=seed.seed_id, task_id=seed.task_id,
                program_xml=seed.blueprint.xml_payload,
                machine_name=seed.machine_name,
                externals=config.externals, allocation=seed.allocation,
                snapshot=snapshot, event_cpu_s=config.event_cpu_s)
            seed.current_state = deployment.instance.current_state
            seed.migrating = False

        self.sim.schedule(DEPLOY_LATENCY_S, do_deploy,
                          label=f"deploy {seed.seed_id}@{target}")

    def _migrate(self, task: ActiveTask, seed: ManagedSeed, target: int,
                 allocation: Mapping[str, float]) -> None:
        """SV-B: deploy the description at the new location, transfer the
        state, resume execution once migrated."""
        source_soil = self.soils[seed.switch]
        snapshot = source_soil.undeploy(seed.seed_id)
        state_size = estimate_size_bytes(snapshot)
        transfer = (MIGRATION_OVERHEAD_S
                    + state_size / MIGRATION_BANDWIDTH_BPS)
        seed.migrating = True
        self.migrations_performed += 1
        old_switch = seed.switch
        seed.switch = target
        seed.allocation = dict(allocation)
        config = next(c for c in task.definition.machines
                      if c.machine_name == seed.machine_name)

        def arrive() -> None:
            deployment = self.soils[target].deploy(
                seed_id=seed.seed_id, task_id=seed.task_id,
                program_xml=seed.blueprint.xml_payload,
                machine_name=seed.machine_name,
                externals=config.externals, allocation=allocation,
                snapshot=snapshot, event_cpu_s=config.event_cpu_s)
            seed.current_state = deployment.instance.current_state
            seed.migrating = False

        self.sim.schedule(transfer, arrive,
                          label=f"migrate {seed.seed_id} "
                                f"{old_switch}->{target}")

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------
    def _route_seed_message(self, src_seed_id: str, src_machine: str,
                            target_machine: str, dst: Optional[Any],
                            value: Any) -> None:
        """Deliver a seed's ``send x to M [@dst]`` (SIII-A-d)."""
        delivered = 0
        for task in self.tasks.values():
            for seed in task.seeds:
                if seed.machine_name != target_machine:
                    continue
                if seed.switch is None or seed.seed_id == src_seed_id:
                    continue
                if dst is not None and seed.switch != dst:
                    continue
                endpoint = f"seed/{seed.switch}/{seed.seed_id}"
                if not self.bus.is_registered(endpoint):
                    continue
                self.bus.send(
                    f"seed-route/{src_seed_id}", endpoint,
                    {"__from_machine__": src_machine, "value": value},
                    size_bytes=estimate_size_bytes(value))
                delivered += 1
        if delivered == 0 and dst is not None:
            raise DeploymentError(
                f"send from {src_seed_id!r}: no {target_machine!r} seed on "
                f"switch {dst!r}")

    def broadcast_to_seeds(self, task_id: str, machine: str,
                           dst: Optional[int], value: Any,
                           source: str) -> int:
        """Harvester -> seeds delivery (used by Harvester.send_to_seeds)."""
        task = self.tasks.get(task_id)
        if task is None:
            raise DeploymentError(f"unknown task {task_id!r}")
        sent = 0
        for seed in task.seeds:
            if seed.machine_name != machine or seed.switch is None:
                continue
            if dst is not None and seed.switch != dst:
                continue
            endpoint = f"seed/{seed.switch}/{seed.seed_id}"
            if not self.bus.is_registered(endpoint):
                continue
            self.bus.send(source, endpoint,
                          {"__harvester__": True, "value": value},
                          size_bytes=estimate_size_bytes(value))
            sent += 1
        return sent

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _make_transition_listener(self, soil: Soil):
        def listener(seed_id: str, old_state: str, new_state: str) -> None:
            for task in self.tasks.values():
                for seed in task.seeds:
                    if seed.seed_id == seed_id:
                        seed.current_state = new_state
                        return
        return listener

    def deployed_seed_count(self) -> int:
        return sum(soil.num_seeds for soil in self.soils.values())

    def seed_location(self, seed_id: str) -> Optional[int]:
        for task in self.tasks.values():
            for seed in task.seeds:
                if seed.seed_id == seed_id:
                    return seed.switch
        return None


def _alloc_close(a: Mapping[str, float], b: Mapping[str, float],
                 tol: float = 1e-9) -> bool:
    keys = set(a) | set(b)
    return all(abs(a.get(k, 0.0) - b.get(k, 0.0)) <= tol for k in keys)
