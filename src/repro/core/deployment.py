"""One-call wiring of a complete FARM deployment.

Bundles simulator, topology, SDN controller, emulated switch fleet,
control bus, and seeder — the boilerplate every example, test, and
benchmark would otherwise repeat.
"""

from __future__ import annotations

from typing import Optional

from repro.core.chaos import FaultInjector
from repro.core.comm import ControlBus, SoilCommConfig
from repro.core.reliable import RetryPolicy
from repro.core.seeder import Seeder
from repro.core.soil import Soil
from repro.net.controller import SdnController
from repro.net.topology import Topology, spine_leaf
from repro.net.traffic import Workload
from repro.obs import Observability
from repro.obs.profiler import ProfilingBundle
from repro.obs.scarecrow import Scarecrow
from repro.obs.tsdb import Retention
from repro.sim.engine import Simulator
from repro.switchsim.chassis import ACCTON_AS5712, SwitchFleet, SwitchModel


class FarmDeployment:
    """A running FARM instance over an emulated data center."""

    def __init__(self, topology: Optional[Topology] = None,
                 switch_model: SwitchModel = ACCTON_AS5712,
                 soil_config: Optional[SoilCommConfig] = None,
                 solver: str = "heuristic",
                 retry_policy: Optional[RetryPolicy] = None,
                 trace: bool = False,
                 incremental: bool = True) -> None:
        self.sim = Simulator()
        # One registry + tracer for the whole deployment: the fleet's
        # resource models, the control bus, and everything hanging off the
        # bus (soils, seeder, harvesters, fault tolerance) share it.
        self.obs = Observability(self.sim, trace=trace)
        self.topology = topology if topology is not None else spine_leaf()
        self.controller = SdnController(self.topology)
        self.fleet = SwitchFleet.for_topology(self.sim, self.topology,
                                              model=switch_model,
                                              registry=self.obs.registry)
        self.bus = ControlBus(self.sim, registry=self.obs.registry,
                              tracer=self.obs.tracer)
        self.seeder = Seeder(self.sim, self.controller, self.fleet, self.bus,
                             soil_config=soil_config, solver=solver,
                             retry_policy=retry_policy,
                             incremental=incremental)
        self.chaos: Optional[FaultInjector] = None
        self.scarecrow: Optional[Scarecrow] = None
        self.remediation = None
        self.profiling: Optional[ProfilingBundle] = None

    @property
    def metrics(self):
        """The deployment-wide :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.obs.registry

    @property
    def tracer(self):
        return self.obs.tracer

    # -- convenience ---------------------------------------------------
    def soil(self, switch_id: int) -> Soil:
        return self.seeder.soils[switch_id]

    def enable_chaos(self, seed: int = 0) -> FaultInjector:
        """Attach a (deterministic) fault injector to the control bus."""
        if self.chaos is None:
            self.chaos = FaultInjector(self.sim, seed=seed)
            self.chaos.attach(self.bus)
        return self.chaos

    def enable_scarecrow(self, interval_s: float = 1.0,
                         retention: Optional[Retention] = None) -> Scarecrow:
        """Attach the self-monitoring pipeline: a periodic scraper over
        the deployment registry, feeding the sim-time TSDB and alert
        engine.  Everything the deployment publishes — bus, soils,
        seeder, fault tolerance, per-switch CPU/PCIe/TCAM — becomes
        queryable and dashboard-able.  Idempotent; returns the bundle so
        callers can ``add_rule`` / ``write_dashboard``.
        """
        if self.scarecrow is None:
            self.scarecrow = Scarecrow(self.sim, self.obs.registry,
                                       tracer=self.obs.tracer,
                                       interval_s=interval_s,
                                       retention=retention)
            self.scarecrow.start()
            if self.profiling is not None:
                self.profiling.watch_alerts(self.scarecrow.alerts)
        return self.scarecrow

    def enable_remediation(self, fault_tolerance=None, config=None,
                           dry_run: bool = False):
        """Attach the closed-loop remediation engine to Scarecrow's alert
        lifecycle (enables Scarecrow if needed).  Policies are added by
        the caller; idempotent, returns the engine.
        """
        if self.remediation is None:
            from repro.remediation import RemediationEngine
            scarecrow = self.enable_scarecrow()
            self.remediation = RemediationEngine(
                self.seeder, fault_tolerance=fault_tolerance,
                config=config, dry_run=dry_run)
            self.remediation.attach(scarecrow)
        return self.remediation

    def enable_profiling(self, mode: str = "exact", sample_every: int = 32,
                         flight_recorder: bool = True,
                         ring_capacity: int = 2048,
                         snapshot_interval_s: Optional[float] = None,
                         counter_interval_s: Optional[float] = None
                         ) -> ProfilingBundle:
        """Attach Surveyor: dispatch-level cost attribution (``mode`` in
        {exact, sampling}) plus, by default, a flight recorder that keeps
        a bounded ring of recent trace events and dumps a postmortem
        bundle when a Scarecrow alert fires (arm via the returned
        bundle's ``watch_alerts`` — done automatically when Scarecrow is
        already enabled) or an exception escapes ``run``.  Note the
        recorder turns tracing on (ring-only if it was off), which
        disables the vector-kernel fast path for the rest of the run;
        pass ``flight_recorder=False`` for pure profiling with
        bit-identical outputs.  Idempotent; returns the bundle.
        """
        if self.profiling is None:
            self.profiling = ProfilingBundle(
                self.sim, self.obs, mode=mode, sample_every=sample_every,
                flight_recorder=flight_recorder,
                ring_capacity=ring_capacity,
                snapshot_interval_s=snapshot_interval_s,
                counter_interval_s=counter_interval_s)
            if self.scarecrow is not None:
                self.profiling.watch_alerts(self.scarecrow.alerts)
        return self.profiling

    def start_workload(self, workload: Workload, switch_id: int) -> Workload:
        """Attach a workload's flows to one switch's ASIC."""
        workload.start(self.sim, self.fleet.get(switch_id).asic)
        return workload

    def run(self, until: float) -> float:
        profiling = self.profiling
        if profiling is None:
            return self.sim.run(until=until)
        # Don't charge the first event with host time spent outside the
        # kernel (between run calls); dump the black box if the run dies.
        profiling.reanchor()
        try:
            return self.sim.run(until=until)
        except Exception as exc:
            profiling.on_exception(exc)
            raise

    def submit(self, definition, reoptimize: bool = True):
        return self.seeder.submit(definition, reoptimize=reoptimize)

    def settle(self, duration: float = 0.01) -> None:
        """Let deploy commands land (they have control-plane latency)."""
        self.sim.run(until=self.sim.now + duration)
