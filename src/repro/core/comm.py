"""Communication services and their cost models (SV, SVI-E).

Three communication paths exist in FARM:

* **seed <-> soil** — on-switch.  Two schemes are implemented, matching
  SV-A-b: gRPC (latency grows linearly with the number of deployed seeds,
  Fig. 10) and a shared-memory buffer usable when seeds run as threads of
  the soil process (near-constant latency).  The original system measured
  this; here the models encode the measured *shapes* with first-principles
  parameters (per-message marshalling cost x queued messages for gRPC).
* **soil/seed <-> seeder/harvester** — off-switch control traffic via a
  RabbitMQ-like :class:`ControlBus` with in-DC delivery latency.
* **seed <-> seed** — routed through the soils' communication services
  over the same bus.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CommError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.engine import Simulator


class ExecutionMode(Enum):
    """How seeds execute on the switch (SV-A-b)."""

    THREAD = "thread"    # seeds are threads of the soil process
    PROCESS = "process"  # seeds are isolated processes


class CommScheme(Enum):
    """Seed <-> soil communication scheme."""

    SHARED_BUFFER = "shared_buffer"
    GRPC = "grpc"


@dataclass(frozen=True)
class SoilCommConfig:
    """Execution + communication configuration of one soil."""

    execution_mode: ExecutionMode = ExecutionMode.THREAD
    comm_scheme: CommScheme = CommScheme.SHARED_BUFFER
    aggregation: bool = True  # soil-side polling aggregation

    def __post_init__(self) -> None:
        if (self.comm_scheme is CommScheme.SHARED_BUFFER
                and self.execution_mode is ExecutionMode.PROCESS):
            raise CommError(
                "the shared buffer requires seeds to run as threads of the "
                "soil (SV-A-b)")


# Model parameters (calibrated to reproduce the Fig. 9/10 shapes).
GRPC_BASE_LATENCY_S = 60e-6        # one marshal/unmarshal round
GRPC_PER_SEED_LATENCY_S = 14e-6    # queueing behind other seeds' channels
SHARED_BUFFER_LATENCY_S = 2e-6     # one cache-coherent ring-buffer hop
GRPC_CPU_PER_MSG_S = 25e-6         # protobuf encode/decode CPU
SHARED_BUFFER_CPU_PER_MSG_S = 1e-6


def seed_soil_latency(config: SoilCommConfig, num_seeds: int) -> float:
    """One-way seed<->soil message latency given the deployment size."""
    if num_seeds < 0:
        raise CommError(f"negative seed count: {num_seeds}")
    if config.comm_scheme is CommScheme.GRPC:
        return GRPC_BASE_LATENCY_S + GRPC_PER_SEED_LATENCY_S * num_seeds
    return SHARED_BUFFER_LATENCY_S


def seed_soil_cpu_cost(config: SoilCommConfig) -> Tuple[float, int]:
    """(cpu-seconds, context switches) charged per seed<->soil message."""
    if config.comm_scheme is CommScheme.GRPC:
        cpu = GRPC_CPU_PER_MSG_S
    else:
        cpu = SHARED_BUFFER_CPU_PER_MSG_S
    switches = 2 if config.execution_mode is ExecutionMode.PROCESS else 0
    return cpu, switches


# ---------------------------------------------------------------------------
# Control bus (RabbitMQ substitute)
# ---------------------------------------------------------------------------

#: Broker hop + in-DC network latency for one control message.
BUS_BASE_LATENCY_S = 250e-6
#: Serialization cost per KB of payload.
BUS_PER_KB_LATENCY_S = 8e-6


@dataclass
class BusMessage:
    """One delivered control-plane message (also the audit record)."""

    msg_id: int
    src: str
    dst: str
    payload: Any
    size_bytes: int
    sent_at: float
    delivered_at: float
    #: True when the bus (or an attached fault injector) discarded the
    #: message instead of scheduling delivery.
    dropped: bool = False


#: Unknown-destination policies for :meth:`ControlBus.send`.
UNKNOWN_DST_POLICIES = ("raise", "drop")


def _trace_args(message: "BusMessage") -> Dict[str, Any]:
    """Trace-event args for a bus message, carrying the causal trace id
    (the seed id, when the payload names one) across tracks.  Only called
    when tracing is enabled; never mutates the payload — injecting ids
    in-band would change ``estimate_size_bytes`` and thus latencies."""
    args: Dict[str, Any] = {"msg_id": message.msg_id,
                            "size_bytes": message.size_bytes}
    payload = message.payload
    if isinstance(payload, dict):
        inner = payload.get("payload") if payload.get("__rel__") == "data" \
            else payload
        if isinstance(inner, dict):
            seed_id = inner.get("seed_id")
            if seed_id is not None:
                args["trace_id"] = seed_id
            cmd = inner.get("cmd") or inner.get("event")
            if cmd is not None:
                args["kind"] = cmd
    return args


class ControlBus:
    """Topic-less named-endpoint message bus with delivery latency.

    Endpoints register a handler; :meth:`send` schedules delivery on the
    simulator.  All traffic is recorded so benchmarks can account network
    load (Fig. 4 counts control-plane bytes).
    """

    #: Default bound on the retained delivery history; aggregate counters
    #: (total_bytes / total_messages / rates) live on the metrics registry
    #: and are exact regardless of trimming.  High-rate collection
    #: baselines (sFlow at 1 ms over hundreds of ports) push millions of
    #: messages — keeping them all would eat the heap.
    HISTORY_LIMIT = 100_000

    #: Length (sim-seconds) of the windowed byte/message rate estimator.
    RATE_WINDOW_S = 5.0

    def __init__(self, sim: Simulator,
                 base_latency_s: float = BUS_BASE_LATENCY_S,
                 unknown_dst: str = "raise",
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 history_limit: Optional[int] = None) -> None:
        from collections import deque
        if unknown_dst not in UNKNOWN_DST_POLICIES:
            raise CommError(f"unknown-destination policy must be one of "
                            f"{UNKNOWN_DST_POLICIES}, got {unknown_dst!r}")
        self.sim = sim
        self.base_latency_s = base_latency_s
        # Shared profiler attribution key for every delivery event.
        self._deliver_cost_key = ("bus", None, None, "deliver")
        #: What :meth:`send` does when the destination is not registered:
        #: ``"raise"`` (strict, the historic behavior) or ``"drop"`` (count
        #: the message as undeliverable and move on — required for retry
        #: loops that race an endpoint's re-registration).
        self.unknown_dst_policy = unknown_dst
        self._handlers: Dict[str, Callable[[BusMessage], None]] = {}
        self._ids = itertools.count(1)
        self.history_limit = (history_limit if history_limit is not None
                              else self.HISTORY_LIMIT)
        self.delivered: "deque[BusMessage]" = deque(maxlen=self.history_limit)
        #: Shared deployment registry, or a private one for standalone use.
        #: Components downstream of the bus (reliable endpoints, soils,
        #: the seeder) default to this registry, so wiring one registry
        #: into the bus observes the whole control plane.
        self.metrics = registry if registry is not None \
            else MetricsRegistry(clock=lambda: sim.now)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._m_messages = self.metrics.counter(
            "farm_bus_messages_total",
            "Control-plane messages delivered to a handler.",
            window_s=self.RATE_WINDOW_S)
        self._m_bytes = self.metrics.counter(
            "farm_bus_bytes_total",
            "Control-plane bytes delivered (Fig. 4 network load).",
            window_s=self.RATE_WINDOW_S)
        self._m_undeliverable = self.metrics.counter(
            "farm_bus_undeliverable_total",
            "Messages discarded: destination not registered.")
        self._m_chaos_dropped = self.metrics.counter(
            "farm_bus_chaos_dropped_total",
            "Messages discarded by the attached fault injector.")
        #: Optional :class:`repro.core.chaos.FaultInjector`; when set,
        #: every send consults it for loss/duplication/delay/partitions.
        self.fault_injector: Optional[Any] = None

    # -- legacy counter attributes (now registry-backed) -------------------
    @property
    def total_bytes(self) -> int:
        """Delivered payload bytes, exact for the whole run (the registry
        counter survives :attr:`delivered` history trimming)."""
        return int(self._m_bytes.value)

    @property
    def total_messages(self) -> int:
        return int(self._m_messages.value)

    @property
    def undeliverable_messages(self) -> int:
        """Messages discarded because no handler was registered for their
        destination (at send or at delivery time)."""
        return int(self._m_undeliverable.value)

    def register(self, endpoint: str,
                 handler: Callable[[BusMessage], None]) -> None:
        if endpoint in self._handlers:
            raise CommError(f"endpoint {endpoint!r} already registered")
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: str) -> None:
        self._handlers.pop(endpoint, None)

    def is_registered(self, endpoint: str) -> bool:
        return endpoint in self._handlers

    def send(self, src: str, dst: str, payload: Any,
             size_bytes: int = 256,
             extra_latency_s: float = 0.0,
             on_unknown: Optional[str] = None) -> BusMessage:
        """Queue a message; returns the (not yet delivered) record.

        ``on_unknown`` overrides :attr:`unknown_dst_policy` for this call
        (retry layers pass ``"drop"`` so a destination mid-reconnect does
        not abort the retry loop).
        """
        policy = on_unknown if on_unknown is not None \
            else self.unknown_dst_policy
        if policy not in UNKNOWN_DST_POLICIES:
            raise CommError(f"unknown-destination policy must be one of "
                            f"{UNKNOWN_DST_POLICIES}, got {policy!r}")
        latency = (self.base_latency_s + extra_latency_s
                   + BUS_PER_KB_LATENCY_S * (size_bytes / 1024.0))
        message = BusMessage(
            msg_id=next(self._ids), src=src, dst=dst, payload=payload,
            size_bytes=size_bytes, sent_at=self.sim.now,
            delivered_at=self.sim.now + latency)
        tracer = self.tracer
        if dst not in self._handlers:
            if policy == "raise":
                raise CommError(f"unknown bus endpoint {dst!r}")
            self._m_undeliverable.inc()
            message.dropped = True
            if tracer.enabled:
                tracer.instant(f"undeliverable {src}->{dst}", track="bus",
                               cat="bus", args=_trace_args(message))
            return message
        deliveries = [0.0]
        if self.fault_injector is not None:
            deliveries = self.fault_injector.plan(src, dst)
            if not deliveries:
                self._m_chaos_dropped.inc()
                message.dropped = True
                if tracer.enabled:
                    tracer.instant(f"chaos-drop {src}->{dst}", track="bus",
                                   cat="bus", args=_trace_args(message))
                return message
        if tracer.enabled:
            tracer.async_begin(f"{src}->{dst}", span_id=f"msg{message.msg_id}",
                               track="bus", cat="bus",
                               args=_trace_args(message))
        for extra_delay in deliveries:
            self.sim.schedule(latency + extra_delay, self._deliver, message,
                              label=f"bus {src}->{dst}",
                              cost_key=self._deliver_cost_key)
        return message

    def _deliver(self, message: BusMessage) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None:
            # endpoint vanished (seed undeployed mid-flight)
            self._m_undeliverable.inc()
            return
        message.delivered_at = self.sim.now
        self.delivered.append(message)
        self._m_bytes.inc(message.size_bytes)
        self._m_messages.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.async_end(f"{message.src}->{message.dst}",
                             span_id=f"msg{message.msg_id}",
                             track="bus", cat="bus")
        handler(message)

    # -- accounting --------------------------------------------------------
    def messages_between(self, t0: float, t1: float) -> List[BusMessage]:
        """Delivered messages in ``[t0, t1]`` — bounded by
        :attr:`history_limit`; use the registry counters for exact totals."""
        return [m for m in self.delivered if t0 <= m.delivered_at <= t1]

    def bytes_per_second(self, horizon: Optional[float] = None) -> float:
        """Delivered-byte rate.

        Without ``horizon``: the lifetime average (total bytes over total
        elapsed sim-time).  With ``horizon``: the rate over the trailing
        ``horizon`` seconds, computed from the registry's sim-time rate
        window — **not** from the :attr:`delivered` history, so it stays
        correct after trimming.  (The old implementation divided all-time
        bytes by the window length, wildly overestimating short windows.)
        Horizons are clamped to :attr:`RATE_WINDOW_S`.
        """
        if horizon is None:
            elapsed = self.sim.now
            if elapsed <= 0:
                return 0.0
            return self._m_bytes.value / elapsed
        if horizon <= 0:
            return 0.0
        return self._m_bytes.rate(min(horizon, self.RATE_WINDOW_S))


def estimate_size_bytes(payload: Any) -> int:
    """Rough wire size of a control message payload."""
    if payload is None:
        return 64
    if isinstance(payload, bool):
        return 65
    if isinstance(payload, (int, float)):
        return 72
    if isinstance(payload, str):
        return 64 + len(payload)
    if isinstance(payload, (list, tuple)):
        return 64 + sum(estimate_size_bytes(item) for item in payload)
    if isinstance(payload, dict):
        return 64 + sum(
            estimate_size_bytes(k) + estimate_size_bytes(v)
            for k, v in payload.items())
    return 256
