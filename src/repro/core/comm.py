"""Communication services and their cost models (SV, SVI-E).

Three communication paths exist in FARM:

* **seed <-> soil** — on-switch.  Two schemes are implemented, matching
  SV-A-b: gRPC (latency grows linearly with the number of deployed seeds,
  Fig. 10) and a shared-memory buffer usable when seeds run as threads of
  the soil process (near-constant latency).  The original system measured
  this; here the models encode the measured *shapes* with first-principles
  parameters (per-message marshalling cost x queued messages for gRPC).
* **soil/seed <-> seeder/harvester** — off-switch control traffic via a
  RabbitMQ-like :class:`ControlBus` with in-DC delivery latency.
* **seed <-> seed** — routed through the soils' communication services
  over the same bus.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CommError
from repro.sim.engine import Simulator


class ExecutionMode(Enum):
    """How seeds execute on the switch (SV-A-b)."""

    THREAD = "thread"    # seeds are threads of the soil process
    PROCESS = "process"  # seeds are isolated processes


class CommScheme(Enum):
    """Seed <-> soil communication scheme."""

    SHARED_BUFFER = "shared_buffer"
    GRPC = "grpc"


@dataclass(frozen=True)
class SoilCommConfig:
    """Execution + communication configuration of one soil."""

    execution_mode: ExecutionMode = ExecutionMode.THREAD
    comm_scheme: CommScheme = CommScheme.SHARED_BUFFER
    aggregation: bool = True  # soil-side polling aggregation

    def __post_init__(self) -> None:
        if (self.comm_scheme is CommScheme.SHARED_BUFFER
                and self.execution_mode is ExecutionMode.PROCESS):
            raise CommError(
                "the shared buffer requires seeds to run as threads of the "
                "soil (SV-A-b)")


# Model parameters (calibrated to reproduce the Fig. 9/10 shapes).
GRPC_BASE_LATENCY_S = 60e-6        # one marshal/unmarshal round
GRPC_PER_SEED_LATENCY_S = 14e-6    # queueing behind other seeds' channels
SHARED_BUFFER_LATENCY_S = 2e-6     # one cache-coherent ring-buffer hop
GRPC_CPU_PER_MSG_S = 25e-6         # protobuf encode/decode CPU
SHARED_BUFFER_CPU_PER_MSG_S = 1e-6


def seed_soil_latency(config: SoilCommConfig, num_seeds: int) -> float:
    """One-way seed<->soil message latency given the deployment size."""
    if num_seeds < 0:
        raise CommError(f"negative seed count: {num_seeds}")
    if config.comm_scheme is CommScheme.GRPC:
        return GRPC_BASE_LATENCY_S + GRPC_PER_SEED_LATENCY_S * num_seeds
    return SHARED_BUFFER_LATENCY_S


def seed_soil_cpu_cost(config: SoilCommConfig) -> Tuple[float, int]:
    """(cpu-seconds, context switches) charged per seed<->soil message."""
    if config.comm_scheme is CommScheme.GRPC:
        cpu = GRPC_CPU_PER_MSG_S
    else:
        cpu = SHARED_BUFFER_CPU_PER_MSG_S
    switches = 2 if config.execution_mode is ExecutionMode.PROCESS else 0
    return cpu, switches


# ---------------------------------------------------------------------------
# Control bus (RabbitMQ substitute)
# ---------------------------------------------------------------------------

#: Broker hop + in-DC network latency for one control message.
BUS_BASE_LATENCY_S = 250e-6
#: Serialization cost per KB of payload.
BUS_PER_KB_LATENCY_S = 8e-6


@dataclass
class BusMessage:
    """One delivered control-plane message (also the audit record)."""

    msg_id: int
    src: str
    dst: str
    payload: Any
    size_bytes: int
    sent_at: float
    delivered_at: float
    #: True when the bus (or an attached fault injector) discarded the
    #: message instead of scheduling delivery.
    dropped: bool = False


#: Unknown-destination policies for :meth:`ControlBus.send`.
UNKNOWN_DST_POLICIES = ("raise", "drop")


class ControlBus:
    """Topic-less named-endpoint message bus with delivery latency.

    Endpoints register a handler; :meth:`send` schedules delivery on the
    simulator.  All traffic is recorded so benchmarks can account network
    load (Fig. 4 counts control-plane bytes).
    """

    #: Bound on the retained delivery history; aggregate counters
    #: (total_bytes / total_messages) are exact regardless.  High-rate
    #: collection baselines (sFlow at 1 ms over hundreds of ports) push
    #: millions of messages — keeping them all would eat the heap.
    HISTORY_LIMIT = 100_000

    def __init__(self, sim: Simulator,
                 base_latency_s: float = BUS_BASE_LATENCY_S,
                 unknown_dst: str = "raise") -> None:
        from collections import deque
        if unknown_dst not in UNKNOWN_DST_POLICIES:
            raise CommError(f"unknown-destination policy must be one of "
                            f"{UNKNOWN_DST_POLICIES}, got {unknown_dst!r}")
        self.sim = sim
        self.base_latency_s = base_latency_s
        #: What :meth:`send` does when the destination is not registered:
        #: ``"raise"`` (strict, the historic behavior) or ``"drop"`` (count
        #: the message as undeliverable and move on — required for retry
        #: loops that race an endpoint's re-registration).
        self.unknown_dst_policy = unknown_dst
        self._handlers: Dict[str, Callable[[BusMessage], None]] = {}
        self._ids = itertools.count(1)
        self.delivered: "deque[BusMessage]" = deque(maxlen=self.HISTORY_LIMIT)
        self.total_bytes = 0
        self.total_messages = 0
        #: Messages discarded because no handler was registered for their
        #: destination (at send or at delivery time).
        self.undeliverable_messages = 0
        #: Optional :class:`repro.core.chaos.FaultInjector`; when set,
        #: every send consults it for loss/duplication/delay/partitions.
        self.fault_injector: Optional[Any] = None

    def register(self, endpoint: str,
                 handler: Callable[[BusMessage], None]) -> None:
        if endpoint in self._handlers:
            raise CommError(f"endpoint {endpoint!r} already registered")
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: str) -> None:
        self._handlers.pop(endpoint, None)

    def is_registered(self, endpoint: str) -> bool:
        return endpoint in self._handlers

    def send(self, src: str, dst: str, payload: Any,
             size_bytes: int = 256,
             extra_latency_s: float = 0.0,
             on_unknown: Optional[str] = None) -> BusMessage:
        """Queue a message; returns the (not yet delivered) record.

        ``on_unknown`` overrides :attr:`unknown_dst_policy` for this call
        (retry layers pass ``"drop"`` so a destination mid-reconnect does
        not abort the retry loop).
        """
        policy = on_unknown if on_unknown is not None \
            else self.unknown_dst_policy
        if policy not in UNKNOWN_DST_POLICIES:
            raise CommError(f"unknown-destination policy must be one of "
                            f"{UNKNOWN_DST_POLICIES}, got {policy!r}")
        latency = (self.base_latency_s + extra_latency_s
                   + BUS_PER_KB_LATENCY_S * (size_bytes / 1024.0))
        message = BusMessage(
            msg_id=next(self._ids), src=src, dst=dst, payload=payload,
            size_bytes=size_bytes, sent_at=self.sim.now,
            delivered_at=self.sim.now + latency)
        if dst not in self._handlers:
            if policy == "raise":
                raise CommError(f"unknown bus endpoint {dst!r}")
            self.undeliverable_messages += 1
            message.dropped = True
            return message
        deliveries = [0.0]
        if self.fault_injector is not None:
            deliveries = self.fault_injector.plan(src, dst)
            if not deliveries:
                message.dropped = True
                return message
        for extra_delay in deliveries:
            self.sim.schedule(latency + extra_delay, self._deliver, message,
                              label=f"bus {src}->{dst}")
        return message

    def _deliver(self, message: BusMessage) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None:
            # endpoint vanished (seed undeployed mid-flight)
            self.undeliverable_messages += 1
            return
        message.delivered_at = self.sim.now
        self.delivered.append(message)
        self.total_bytes += message.size_bytes
        self.total_messages += 1
        handler(message)

    # -- accounting --------------------------------------------------------
    def messages_between(self, t0: float, t1: float) -> List[BusMessage]:
        return [m for m in self.delivered if t0 <= m.delivered_at <= t1]

    def bytes_per_second(self, horizon: Optional[float] = None) -> float:
        elapsed = horizon if horizon is not None else self.sim.now
        if elapsed <= 0:
            return 0.0
        return self.total_bytes / elapsed


def estimate_size_bytes(payload: Any) -> int:
    """Rough wire size of a control message payload."""
    if payload is None:
        return 64
    if isinstance(payload, bool):
        return 65
    if isinstance(payload, (int, float)):
        return 72
    if isinstance(payload, str):
        return 64 + len(payload)
    if isinstance(payload, (list, tuple)):
        return 64 + sum(estimate_size_bytes(item) for item in payload)
    if isinstance(payload, dict):
        return 64 + sum(
            estimate_size_bytes(k) + estimate_size_bytes(v)
            for k, v in payload.items())
    return 256
