"""M&M task definitions.

A task is what an operator submits to the seeder (SIII-B): a set of
Almanac machines, values for their ``external`` variables, and optionally
a harvester.  ``event_cpu_s`` lets tasks declare how expensive one event
handler invocation is (the ML task of SVI-A is orders of magnitude above
the HH task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.harvester import Harvester
from repro.core.soil import DEFAULT_EVENT_CPU_S
from repro.errors import DeploymentError


@dataclass
class MachineConfig:
    """Per-machine deployment parameters within a task."""

    machine_name: str
    externals: Dict[str, object] = field(default_factory=dict)
    event_cpu_s: float = DEFAULT_EVENT_CPU_S


@dataclass
class TaskDefinition:
    """One M&M task as submitted to the seeder."""

    task_id: str
    source: str  # Almanac program text
    machines: List[MachineConfig]
    harvester: Optional[Harvester] = None
    mandatory: bool = False

    def __post_init__(self) -> None:
        if not self.machines:
            raise DeploymentError(f"task {self.task_id!r} has no machines")
        names = [m.machine_name for m in self.machines]
        if len(set(names)) != len(names):
            raise DeploymentError(
                f"task {self.task_id!r} lists a machine twice")

    @classmethod
    def single_machine(cls, task_id: str, source: str, machine_name: str,
                       externals: Optional[Mapping[str, object]] = None,
                       harvester: Optional[Harvester] = None,
                       event_cpu_s: float = DEFAULT_EVENT_CPU_S,
                       mandatory: bool = False) -> "TaskDefinition":
        """Convenience for the common one-machine task."""
        return cls(task_id=task_id, source=source,
                   machines=[MachineConfig(machine_name=machine_name,
                                           externals=dict(externals or {}),
                                           event_cpu_s=event_cpu_s)],
                   harvester=harvester, mandatory=mandatory)
