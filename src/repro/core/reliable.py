"""Reliable delivery over the (possibly unreliable) control bus.

The raw :class:`repro.core.comm.ControlBus` models a RabbitMQ-style broker;
with a :class:`repro.core.chaos.FaultInjector` attached it loses,
duplicates, delays, and partitions messages.  Control-plane *commands*
(deploy/migrate/undeploy) and their completion reports cannot tolerate
that, so both the seeder and every soil speak through a
:class:`ReliableEndpoint`:

* every data message carries a per-sender **sequence number** and is
  acknowledged by the receiver;
* unacked messages are **retransmitted** with capped exponential backoff
  plus deterministic jitter (seeded per endpoint, so runs replay exactly);
* the receiver **deduplicates** by ``(sender, seq)`` and re-acks
  duplicates (the original ack may itself have been lost);
* after ``max_attempts`` transmissions the message is **dead-lettered**
  to the caller's callback instead of retrying forever.

At-least-once transmission plus receiver-side dedup yields effectively
exactly-once *processing* — the delivery guarantee the seeder's
reconciliation logic is written against.  Messages without the envelope
pass through untouched, so an endpoint upgraded to reliable delivery
keeps accepting legacy fire-and-forget traffic (heartbeats, telemetry).
"""

from __future__ import annotations

import itertools
import random
import zlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Set

from repro.core.comm import BusMessage, ControlBus, estimate_size_bytes
from repro.errors import CommError
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Event, Simulator, jittered_backoff

#: Wire size of an ack and of the per-message envelope bookkeeping.
ACK_SIZE_BYTES = 64
ENVELOPE_OVERHEAD_BYTES = 32

#: Callback invoked when a message exhausts its attempts:
#: ``on_dead(dst, payload, attempts)``.
DeadLetterCallback = Callable[[str, Any, int], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the retransmission loop.

    ``timeout_s`` is the first-attempt ack deadline; subsequent attempts
    back off exponentially up to ``backoff_cap_s``, each stretched by up
    to ``jitter_frac`` (multiplicative) to avoid retry synchronization.
    """

    timeout_s: float = 5e-3
    backoff_cap_s: float = 0.2
    max_attempts: int = 10
    jitter_frac: float = 0.2

    def __post_init__(self) -> None:
        if self.timeout_s <= 0 or self.backoff_cap_s <= 0:
            raise CommError("retry timeouts must be positive")
        if self.max_attempts < 1:
            raise CommError(
                f"max_attempts must be at least 1: {self.max_attempts}")
        if self.jitter_frac < 0:
            raise CommError(
                f"jitter_frac must be non-negative: {self.jitter_frac}")


@dataclass
class _Pending:
    seq: int
    dst: str
    payload: Any
    size_bytes: int
    attempts: int = 0
    timer: Optional[Event] = None
    on_dead: Optional[DeadLetterCallback] = None


class ReliableEndpoint:
    """One named bus endpoint with ack/retry/dedup semantics.

    ``handler(message)`` receives the delivered :class:`BusMessage` with
    ``payload`` already unwrapped to the sender's original payload.
    ``alive`` gates both directions: while it returns False the endpoint
    neither processes nor acks incoming traffic (a powered-off or
    partitioned switch is silent, not polite).
    """

    def __init__(self, bus: ControlBus, sim: Simulator, name: str,
                 handler: Callable[[BusMessage], None],
                 policy: Optional[RetryPolicy] = None,
                 alive: Optional[Callable[[], bool]] = None,
                 rng: Optional[random.Random] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.bus = bus
        self.sim = sim
        self.name = name
        self.handler = handler
        self.policy = policy or RetryPolicy()
        self.alive = alive or (lambda: True)
        # Seeded from the endpoint name: deterministic across runs, yet
        # de-synchronized between endpoints.
        self.rng = rng or random.Random(zlib.crc32(name.encode("utf-8")))
        self._seq = itertools.count(1)
        # Shared profiler attribution key for this endpoint's timeouts.
        self._timeout_cost_key = ("reliable", None, None, name)
        self._pending: Dict[int, _Pending] = {}
        self._seen: Dict[str, Set[int]] = {}
        # Retry/dedup counters live on the deployment's metrics registry
        # (the bus's by default), labeled per endpoint; the legacy
        # attributes below are read-through properties.
        metrics = registry if registry is not None else bus.metrics
        labels = {"endpoint": name}
        self._m_acked = metrics.counter(
            "farm_reliable_acked_total",
            "Data messages acknowledged by the receiver.", labels=labels)
        self._m_retransmissions = metrics.counter(
            "farm_reliable_retransmissions_total",
            "Retransmissions after ack timeouts.", labels=labels)
        self._m_dead_letters = metrics.counter(
            "farm_reliable_dead_letters_total",
            "Messages abandoned after max_attempts.", labels=labels)
        self._m_duplicates = metrics.counter(
            "farm_reliable_duplicates_total",
            "Received duplicates discarded by (sender, seq) dedup.",
            labels=labels)
        self.tracer = bus.tracer
        bus.register(name, self._on_message)

    # -- legacy counter attributes (now registry-backed) -------------------
    @property
    def acked(self) -> int:
        return int(self._m_acked.value)

    @property
    def retransmissions(self) -> int:
        return int(self._m_retransmissions.value)

    @property
    def dead_letters(self) -> int:
        return int(self._m_dead_letters.value)

    @property
    def duplicates_discarded(self) -> int:
        return int(self._m_duplicates.value)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: str, payload: Any,
             size_bytes: Optional[int] = None,
             on_dead: Optional[DeadLetterCallback] = None,
             extra_latency_s: float = 0.0) -> Optional[int]:
        """Send ``payload`` reliably to ``dst``; returns the sequence
        number, or None when this endpoint is not alive."""
        if not self.alive():
            return None
        seq = next(self._seq)
        size = size_bytes if size_bytes is not None \
            else estimate_size_bytes(payload)
        pending = _Pending(seq=seq, dst=dst, payload=payload,
                           size_bytes=size, on_dead=on_dead)
        self._pending[seq] = pending
        self._transmit(pending, extra_latency_s)
        return seq

    def _transmit(self, pending: _Pending,
                  extra_latency_s: float = 0.0) -> None:
        pending.attempts += 1
        envelope = {"__rel__": "data", "src": self.name,
                    "seq": pending.seq, "payload": pending.payload}
        # "drop" because the destination may be mid-reconnect: the retry
        # loop, not the send, decides when to give up.
        self.bus.send(self.name, pending.dst, envelope,
                      size_bytes=pending.size_bytes + ENVELOPE_OVERHEAD_BYTES,
                      extra_latency_s=extra_latency_s, on_unknown="drop")
        deadline = extra_latency_s + jittered_backoff(
            self.policy.timeout_s, pending.attempts - 1,
            self.policy.backoff_cap_s, self.rng, self.policy.jitter_frac)
        pending.timer = self.sim.schedule(
            deadline, self._on_timeout, pending.seq,
            label=f"rel-timeout {self.name}#{pending.seq}",
            cost_key=self._timeout_cost_key)

    def _on_timeout(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None:
            return  # acked in the meantime
        if pending.attempts >= self.policy.max_attempts:
            del self._pending[seq]
            self._m_dead_letters.inc()
            tracer = self.tracer
            if tracer.enabled:
                tracer.instant(f"dead-letter {self.name}->{pending.dst}",
                               track="bus", cat="reliable",
                               args={"seq": pending.seq,
                                     "attempts": pending.attempts})
            if pending.on_dead is not None:
                pending.on_dead(pending.dst, pending.payload,
                                pending.attempts)
            return
        if not self.alive():
            # The endpoint itself died mid-retry; its queue dies with it.
            del self._pending[seq]
            return
        self._m_retransmissions.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(f"retransmit {self.name}->{pending.dst}",
                           track="bus", cat="reliable",
                           args={"seq": pending.seq,
                                 "attempt": pending.attempts + 1})
        self._transmit(pending)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_message(self, message: BusMessage) -> None:
        if not self.alive():
            return
        payload = message.payload
        if isinstance(payload, dict) and "__rel__" in payload:
            kind = payload["__rel__"]
            if kind == "ack":
                pending = self._pending.pop(payload["seq"], None)
                if pending is not None:
                    if pending.timer is not None:
                        pending.timer.cancel()
                    self._m_acked.inc()
                return
            if kind == "data":
                src = payload["src"]
                seq = payload["seq"]
                # Always (re-)ack — the previous ack may have been lost.
                self.bus.send(self.name, src,
                              {"__rel__": "ack", "src": self.name,
                               "seq": seq},
                              size_bytes=ACK_SIZE_BYTES, on_unknown="drop")
                seen = self._seen.setdefault(src, set())
                if seq in seen:
                    self._m_duplicates.inc()
                    return
                seen.add(seq)
                # A duplicating bus delivers the *same* record twice;
                # unwrap into a copy so the envelope stays intact for
                # (and is deduplicated on) the other delivery.
                self.handler(replace(message, payload=payload["payload"]))
                return
        # Legacy fire-and-forget traffic addressed to this endpoint.
        self.handler(message)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def reset(self) -> int:
        """Abandon every in-flight message (power-off); returns how many."""
        abandoned = len(self._pending)
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()
        return abandoned

    def close(self) -> None:
        """Reset and unregister from the bus."""
        self.reset()
        self.bus.unregister(self.name)
