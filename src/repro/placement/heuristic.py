"""FARM's placement heuristic (Alg. 1).

1. Sort tasks by decreasing minimum utility.
2. Greedily place each task's seeds at their cheapest feasible footprint,
   preferring the current location (no unnecessary migration); drop the
   whole task if any seed cannot be placed (C1).
3. Redistribute resources per switch with an LP (placements fixed).
4. Compute migration benefits for movable seeds.
5. Migrate in decreasing benefit order, then redistribute again.

Scalability notes: all bookkeeping is dict-based per switch, so the greedy
phase is ``O(seeds * |N^s| * pieces)``; the LPs are per-switch and small.
This is what lets the heuristic track the MILP's utility at a fraction of
the runtime (Fig. 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.almanac.poly import LinPoly, UtilityPiece
from repro.errors import PlacementError
from repro.placement.linprog_builder import INF, LinProgram
from repro.placement.model import (
    PlacementProblem,
    PlacementSolution,
    SeedSpec,
    compute_objective,
)


def _minimal_alloc(piece: UtilityPiece,
                   resource_types: Tuple[str, ...]) -> Dict[str, float]:
    """Cheapest allocation satisfying a piece's simple lower bounds."""
    alloc = {r: 0.0 for r in resource_types}
    for constraint in piece.constraints:
        if len(constraint.coeffs) == 1:
            (var, coeff), = constraint.coeffs.items()
            if coeff > 0:
                alloc[var] = max(alloc.get(var, 0.0),
                                 -constraint.const / coeff)
    return alloc


@dataclass
class _SwitchState:
    """Mutable per-switch accounting during the heuristic run."""

    switch: int
    capacity: Dict[str, float]
    used: Dict[str, float] = field(default_factory=dict)
    #: subject -> current aggregated polling rate (the max over seeds).
    poll_rates: Dict[FrozenSet, float] = field(default_factory=dict)
    #: seeds currently assigned here.
    residents: List[str] = field(default_factory=list)
    #: migration residue: resources still held by seeds moving away.
    residue: Dict[str, float] = field(default_factory=dict)
    residue_poll: Dict[FrozenSet, float] = field(default_factory=dict)

    def free(self, r: str) -> float:
        return (self.capacity.get(r, 0.0) - self.used.get(r, 0.0)
                - self.residue.get(r, 0.0))

    def poll_used(self) -> float:
        total = sum(self.poll_rates.values())
        for subject, rate in self.residue_poll.items():
            total += max(0.0, rate - self.poll_rates.get(subject, 0.0))
        return total


class HeuristicPlacementSolver:
    """Implements Alg. 1 end to end."""

    def __init__(self, problem: PlacementProblem,
                 redistribute: bool = True, migrate: bool = True) -> None:
        self.problem = problem
        self.redistribute_enabled = redistribute
        self.migrate_enabled = migrate
        self.states: Dict[int, _SwitchState] = {
            n: _SwitchState(n, dict(problem.available[n]))
            for n in problem.switches}
        self.placement: Dict[str, int] = {}
        self.allocations: Dict[str, Dict[str, float]] = {}
        self.piece_choice: Dict[str, int] = {}
        self._seed_by_id = {s.seed_id: s for s in problem.all_seeds()}
        #: seeds currently holding a migration-residue reservation on
        #: their previous switch (SIV-B-a: double occupancy in transit).
        self._reserved: Dict[str, int] = {}
        #: per-(seed, piece) minimal allocation — switch-independent, so
        #: computed once instead of per candidate in the greedy loop.
        self._min_allocs: Dict[Tuple[str, int], Dict[str, float]] = {}
        #: per-seed tuple of (piece index, minimal alloc, utility) for the
        #: pieces feasible at their own minimal footprint.
        self._profiles: Dict[str, Tuple[Tuple[int, Dict[str, float], float],
                                        ...]] = {}

    def _minimal_alloc_for(self, seed: SeedSpec, k: int,
                           piece: UtilityPiece) -> Dict[str, float]:
        key = (seed.seed_id, k)
        alloc = self._min_allocs.get(key)
        if alloc is None:
            alloc = _minimal_alloc(piece, self.problem.resource_types)
            self._min_allocs[key] = alloc
        return alloc

    def _piece_profiles(self, seed: SeedSpec
                        ) -> Tuple[Tuple[int, Dict[str, float], float], ...]:
        """Switch-independent per-piece data for :meth:`_best_option`.

        The greedy loop calls ``_best_option`` O(remaining²) times per
        task; minimal allocation, feasibility at that footprint, and the
        utility value depend only on the piece, so they are computed once
        per seed.  The cached alloc dicts are never mutated (``_commit``
        stores a copy).
        """
        profiles = self._profiles.get(seed.seed_id)
        if profiles is None:
            built = []
            for k, piece in enumerate(seed.utility.pieces):
                alloc = self._minimal_alloc_for(seed, k, piece)
                env = {r: alloc.get(r, 0.0)
                       for r in self.problem.resource_types}
                if not piece.feasible(env):
                    continue
                built.append((k, alloc, piece.utility.evaluate(env)))
            profiles = tuple(built)
            self._profiles[seed.seed_id] = profiles
        return profiles

    def _add_residue(self, seed_id: str, prev: int) -> None:
        if seed_id in self._reserved:
            return
        self._reserved[seed_id] = prev
        state = self.states[prev]
        old_alloc = self.problem.previous_allocations.get(seed_id, {})
        for r in self.problem.resource_types:
            if r != self.problem.r_poll:
                state.residue[r] = (state.residue.get(r, 0.0)
                                    + old_alloc.get(r, 0.0))
        self._rebuild_residue_poll(state)

    def _remove_residue(self, seed_id: str, prev: int) -> None:
        if self._reserved.pop(seed_id, None) is None:
            return
        state = self.states[prev]
        old_alloc = self.problem.previous_allocations.get(seed_id, {})
        for r in self.problem.resource_types:
            if r != self.problem.r_poll:
                state.residue[r] = max(
                    0.0, state.residue.get(r, 0.0) - old_alloc.get(r, 0.0))
        self._rebuild_residue_poll(state)

    def _rebuild_residue_poll(self, state: _SwitchState) -> None:
        state.residue_poll.clear()
        for sid, prev in self._reserved.items():
            if prev != state.switch:
                continue
            seed = self._seed_by_id[sid]
            old_alloc = self.problem.previous_allocations.get(sid, {})
            for subject, rate in self._seed_poll_rates(
                    prev, seed, old_alloc).items():
                state.residue_poll[subject] = max(
                    state.residue_poll.get(subject, 0.0), rate)

    # ------------------------------------------------------------------
    # Polling accounting helpers
    # ------------------------------------------------------------------
    def _poll_delta(self, state: _SwitchState, seed: SeedSpec,
                    alloc: Mapping[str, float]) -> Tuple[float,
                                                         Dict[FrozenSet, float]]:
        """Additional aggregated polling rate if ``seed`` runs at ``alloc``."""
        env = {r: alloc.get(r, 0.0) for r in self.problem.resource_types}
        delta = 0.0
        new_rates: Dict[FrozenSet, float] = {}
        for demand in seed.poll_demands:
            rate = (self.problem.alpha(state.switch) * demand.weight
                    * max(demand.inv_interval.evaluate(env), 0.0))
            current = max(state.poll_rates.get(demand.subject, 0.0),
                          new_rates.get(demand.subject, 0.0))
            if rate > current:
                delta += rate - current
                new_rates[demand.subject] = rate
        return delta, new_rates

    def _seed_poll_rates(self, switch: int, seed: SeedSpec,
                         alloc: Mapping[str, float]) -> Dict[FrozenSet, float]:
        env = {r: alloc.get(r, 0.0) for r in self.problem.resource_types}
        rates: Dict[FrozenSet, float] = {}
        for demand in seed.poll_demands:
            rate = (self.problem.alpha(switch) * demand.weight
                    * max(demand.inv_interval.evaluate(env), 0.0))
            rates[demand.subject] = max(rates.get(demand.subject, 0.0), rate)
        return rates

    def _recompute_poll_rates(self, state: _SwitchState) -> None:
        rates: Dict[FrozenSet, float] = {}
        for sid in state.residents:
            seed = self._seed_by_id[sid]
            for subject, rate in self._seed_poll_rates(
                    state.switch, seed, self.allocations[sid]).items():
                rates[subject] = max(rates.get(subject, 0.0), rate)
        state.poll_rates = rates

    # ------------------------------------------------------------------
    # Step 2: greedy placement
    # ------------------------------------------------------------------
    def _fits(self, state: _SwitchState, seed: SeedSpec,
              alloc: Mapping[str, float]) -> bool:
        for r in self.problem.resource_types:
            if r == self.problem.r_poll:
                continue
            if alloc.get(r, 0.0) > state.free(r) + 1e-9:
                return False
            if alloc.get(r, 0.0) > state.capacity.get(r, 0.0) + 1e-9:
                return False
        poll_cap = state.capacity.get(self.problem.r_poll, 0.0)
        if alloc.get(self.problem.r_poll, 0.0) > poll_cap + 1e-9:
            return False
        delta, _rates = self._poll_delta(state, seed, alloc)
        return state.poll_used() + delta <= poll_cap + 1e-9

    def _residue_fits(self, seed: SeedSpec, prev: int) -> bool:
        """Can the previous switch absorb this seed's migration residue?

        Placing a seed away from its previous home doubles its occupancy
        there during the transfer (SIV-B-a); if the old switch has no
        headroom, that candidate is not usable.
        """
        state = self.states[prev]
        old_alloc = self.problem.previous_allocations.get(seed.seed_id, {})
        for r in self.problem.resource_types:
            if r == self.problem.r_poll:
                continue
            if old_alloc.get(r, 0.0) > state.free(r) + 1e-9:
                return False
        rates = self._seed_poll_rates(prev, seed, old_alloc)
        delta = 0.0
        for subject, rate in rates.items():
            current = max(state.poll_rates.get(subject, 0.0),
                          state.residue_poll.get(subject, 0.0))
            if rate > current:
                delta += rate - current
        poll_cap = state.capacity.get(self.problem.r_poll, 0.0)
        return state.poll_used() + delta <= poll_cap + 1e-9

    def _best_option(self, seed: SeedSpec
                     ) -> Optional[Tuple[float, int, int, Dict[str, float]]]:
        """(utility, switch, piece index, alloc) of the best feasible spot.

        The previous location gets an epsilon bonus so ties never migrate
        ("without unnecessary migration").
        """
        prev = self.problem.previous_placement.get(seed.seed_id)
        best: Optional[Tuple[float, int, int, Dict[str, float]]] = None
        profiles = self._piece_profiles(seed)
        # Residue feasibility on the previous switch is candidate-
        # independent; evaluate it at most once per call (lazily, since
        # many seeds have no previous home or only their home candidate).
        residue_ok: Optional[bool] = None
        for n in seed.candidates:
            state = self.states[n]
            if prev is not None and n != prev and prev in self.states:
                if residue_ok is None:
                    residue_ok = self._residue_fits(seed, prev)
                if not residue_ok:
                    continue  # old switch cannot host the migration residue
            bonus = 1e-9 if n == prev else 0.0
            for k, alloc, utility in profiles:
                score = utility + bonus
                if best is not None and score <= best[0]:
                    continue  # cannot beat the incumbent; skip the fit check
                if not self._fits(state, seed, alloc):
                    continue
                best = (score, n, k, alloc)
        return best

    def _commit(self, seed: SeedSpec, switch: int, piece_index: int,
                alloc: Dict[str, float]) -> None:
        state = self.states[switch]
        for r in self.problem.resource_types:
            if r != self.problem.r_poll:
                state.used[r] = state.used.get(r, 0.0) + alloc.get(r, 0.0)
        _delta, new_rates = self._poll_delta(state, seed, alloc)
        for subject, rate in new_rates.items():
            state.poll_rates[subject] = max(
                state.poll_rates.get(subject, 0.0), rate)
        state.residents.append(seed.seed_id)
        self.placement[seed.seed_id] = switch
        self.allocations[seed.seed_id] = dict(alloc)
        self.piece_choice[seed.seed_id] = piece_index
        # Placing away from the previous switch doubles occupancy there
        # during the state transfer (SIV-B-a).
        prev = self.problem.previous_placement.get(seed.seed_id)
        if prev is not None and prev != switch and prev in self.states:
            self._add_residue(seed.seed_id, prev)

    def _uncommit(self, seed_id: str) -> None:
        switch = self.placement.pop(seed_id)
        alloc = self.allocations.pop(seed_id)
        self.piece_choice.pop(seed_id, None)
        state = self.states[switch]
        state.residents.remove(seed_id)
        for r in self.problem.resource_types:
            if r != self.problem.r_poll:
                state.used[r] = max(0.0,
                                    state.used.get(r, 0.0) - alloc.get(r, 0.0))
        self._recompute_poll_rates(state)
        # Undo the migration residue if this placement had created one.
        prev = self.problem.previous_placement.get(seed_id)
        if prev is not None and prev != switch and prev in self.states:
            self._remove_residue(seed_id, prev)

    def _task_order(self) -> List:
        """Alg. 1 step 1: tasks by decreasing minimum utility.

        Overridable (the ablation benchmark measures what this buys).
        """
        return sorted(self.problem.tasks,
                      key=lambda t: (-t.min_utility(), t.task_id))

    def greedy_place(self) -> List[str]:
        """Alg. 1 steps 1-2; returns placed task ids."""
        tasks = self._task_order()
        placed_tasks: List[str] = []
        for task in tasks:
            committed: List[str] = []
            # Repeatedly place the remaining seed with the highest best-spot
            # utility ("choose and place such s that adds the most").
            remaining = list(task.seeds)
            failed = False
            while remaining:
                options = []
                for seed in remaining:
                    option = self._best_option(seed)
                    if option is not None:
                        options.append((option[0], seed, option))
                if not options:
                    failed = True
                    break
                options.sort(key=lambda item: (-item[0], item[1].seed_id))
                _score, seed, (score, n, k, alloc) = options[0]
                self._commit(seed, n, k, alloc)
                committed.append(seed.seed_id)
                remaining.remove(seed)
            if failed:
                for seed_id in committed:
                    self._uncommit(seed_id)
                if task.mandatory:
                    raise PlacementError(
                        f"mandatory task {task.task_id!r} cannot be placed")
            else:
                placed_tasks.append(task.task_id)
        return placed_tasks

    # ------------------------------------------------------------------
    # Step 3: LP resource redistribution
    # ------------------------------------------------------------------
    def redistribute(self) -> None:
        """Per-switch LP maximizing summed utility at fixed placement."""
        for state in self.states.values():
            if state.residents:
                self._redistribute_switch(state)

    def _redistribute_switch(self, state: _SwitchState) -> None:
        problem = self.problem
        lp = LinProgram(maximize=True)
        res_vars: Dict[Tuple[str, str], int] = {}
        poll_vars: Dict[FrozenSet, int] = {}
        caps = {r: max(0.0, state.capacity.get(r, 0.0)
                       - state.residue.get(r, 0.0))
                for r in problem.resource_types}
        for sid in state.residents:
            seed = self._seed_by_id[sid]
            piece = seed.utility.pieces[self.piece_choice[sid]]
            for r in problem.resource_types:
                res_vars[(sid, r)] = lp.add_var(
                    f"res[{sid},{r}]", 0.0, state.capacity.get(r, 0.0))
            index = {r: res_vars[(sid, r)] for r in problem.resource_types}
            for constraint in piece.constraints:
                row = _poly_row_named(constraint, index)
                lp.add_constraint(row, lb=-constraint.const, ub=INF)
            u_var = lp.add_var(f"u[{sid}]", 0.0, INF)
            lp.add_objective_term(u_var, 1.0)
            for term in piece.utility.terms:
                con = {u_var: 1.0}
                for var, coeff in _poly_row_named(term, index).items():
                    con[var] = con.get(var, 0.0) - coeff
                lp.add_constraint(con, lb=-INF, ub=term.const)
            for demand in seed.poll_demands:
                poll_var = poll_vars.get(demand.subject)
                if poll_var is None:
                    poll_var = lp.add_var(
                        f"pollres[{len(poll_vars)}]", 0.0, INF)
                    poll_vars[demand.subject] = poll_var
                scale = problem.alpha(state.switch) * demand.weight
                inv = demand.inv_interval
                con = {poll_var: 1.0}
                for var, coeff in inv.coeffs.items():
                    idx = res_vars[(sid, var)]
                    con[idx] = con.get(idx, 0.0) - scale * coeff
                lp.add_constraint(con, lb=scale * inv.const, ub=INF)
        # Capacity rows.
        for r in problem.resource_types:
            if r == problem.r_poll:
                continue
            row = {res_vars[(sid, r)]: 1.0 for sid in state.residents}
            lp.add_constraint(row, lb=-INF, ub=caps[r])
        if poll_vars:
            poll_cap = state.capacity.get(problem.r_poll, 0.0)
            for subject, rate in state.residue_poll.items():
                poll_cap -= rate  # conservative: residue not aggregated
            lp.add_constraint({v: 1.0 for v in poll_vars.values()},
                              lb=-INF, ub=max(poll_cap, 0.0))
        result = lp.solve_lp()
        if not result.usable:
            return  # keep minimal allocations; they were feasible
        for sid in state.residents:
            alloc = {r: max(0.0, result.value(res_vars[(sid, r)]))
                     for r in problem.resource_types}
            self.allocations[sid] = alloc
        # Refresh accounting from the new allocations.
        state.used = {r: sum(self.allocations[sid].get(r, 0.0)
                             for sid in state.residents)
                      for r in problem.resource_types
                      if r != problem.r_poll}
        self._recompute_poll_rates(state)

    # ------------------------------------------------------------------
    # Steps 4-5: migration
    # ------------------------------------------------------------------
    def migrate(self, eligible: Optional[set] = None) -> int:
        """Move seeds where they gain utility; returns number migrated.

        ``eligible`` restricts which placed seeds are even considered —
        the incremental solver passes its dirty set so the benefit scan
        stays proportional to the churn, not the fleet.
        """
        candidates: List[Tuple[float, str, int]] = []
        for sid, current in self.placement.items():
            if eligible is not None and sid not in eligible:
                continue
            seed = self._seed_by_id[sid]
            if len(seed.candidates) < 2:
                continue
            env = {r: self.allocations[sid].get(r, 0.0)
                   for r in self.problem.resource_types}
            current_utility = seed.utility.evaluate(env)
            for n in seed.candidates:
                if n == current:
                    continue
                benefit = self._migration_benefit(seed, n, current_utility)
                if benefit is not None and benefit > 1e-9:
                    candidates.append((benefit, sid, n))
        candidates.sort(key=lambda item: (-item[0], item[1]))
        moved = 0
        moved_ids = set()
        for _benefit, sid, target in candidates:
            if sid in moved_ids:
                continue
            seed = self._seed_by_id[sid]
            option = self._best_alloc_on(seed, target)
            if option is None:
                continue
            k, alloc, utility = option
            env = {r: self.allocations[sid].get(r, 0.0)
                   for r in self.problem.resource_types}
            if utility <= seed.utility.evaluate(env) + 1e-9:
                continue
            source = self.placement[sid]
            old_alloc = dict(self.allocations[sid])
            old_piece = self.piece_choice[sid]
            self._uncommit(sid)
            self._commit(seed, target, k, alloc)
            # Moving away from the seed's previous switch creates migration
            # residue there (double occupancy, SIV-B-a); if that switch
            # cannot absorb it, the migration is rejected and undone.
            prev = self.problem.previous_placement.get(sid)
            overloaded = (prev is not None and prev in self.states
                          and not self._switch_feasible(self.states[prev]))
            if overloaded:
                self._uncommit(sid)
                self._commit(seed, source, old_piece, old_alloc)
                continue
            moved_ids.add(sid)
            moved += 1
        return moved

    def _switch_feasible(self, state: _SwitchState) -> bool:
        for r in self.problem.resource_types:
            if r == self.problem.r_poll:
                continue
            if state.free(r) < -1e-9:
                return False
        poll_cap = state.capacity.get(self.problem.r_poll, 0.0)
        return state.poll_used() <= poll_cap + 1e-9

    def _migration_benefit(self, seed: SeedSpec, target: int,
                           current_utility: float) -> Optional[float]:
        option = self._best_alloc_on(seed, target)
        if option is None:
            return None
        _k, _alloc, utility = option
        return utility - current_utility

    def _best_alloc_on(self, seed: SeedSpec, target: int
                       ) -> Optional[Tuple[int, Dict[str, float], float]]:
        """Best (piece, alloc, utility) on ``target`` given spare capacity.

        Uses the spare capacity greedily: minimal footprint, then pour the
        remaining free resources into the utility's variables.
        """
        state = self.states[target]
        best: Optional[Tuple[int, Dict[str, float], float]] = None
        for k, piece in enumerate(seed.utility.pieces):
            alloc = self._minimal_alloc_for(seed, k, piece)
            if not self._fits(state, seed, alloc):
                continue
            # Pour spare resources into variables the utility rises with.
            rich = dict(alloc)
            for var in piece.utility.variables():
                spare = state.free(var) - alloc.get(var, 0.0) \
                    if var != self.problem.r_poll else 0.0
                if var == self.problem.r_poll:
                    # Polling allocation bounded by remaining poll headroom.
                    headroom = (state.capacity.get(self.problem.r_poll, 0.0)
                                - state.poll_used())
                    spare = max(0.0, headroom)
                rich[var] = alloc.get(var, 0.0) + max(0.0, spare)
                rich[var] = min(rich[var],
                                state.capacity.get(var, 0.0))
            if not self._fits(state, seed, rich):
                rich = alloc
                if not self._fits(state, seed, rich):
                    continue
            env = {r: rich.get(r, 0.0) for r in self.problem.resource_types}
            if not piece.feasible(env):
                continue
            utility = piece.utility.evaluate(env)
            if best is None or utility > best[2]:
                best = (k, dict(rich), utility)
        return best

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def solve(self) -> PlacementSolution:
        start = time.perf_counter()
        placed_tasks = self.greedy_place()
        if self.redistribute_enabled:
            self.redistribute()
        if self.migrate_enabled:
            if self.migrate() and self.redistribute_enabled:
                self.redistribute()
        runtime = time.perf_counter() - start
        objective = compute_objective(self.problem, self.placement,
                                      self.allocations)
        return PlacementSolution(
            placement=dict(self.placement),
            allocations={sid: dict(alloc)
                         for sid, alloc in self.allocations.items()},
            objective=objective, solver="heuristic", runtime_s=runtime,
            placed_tasks=tuple(sorted(placed_tasks)), status="ok")


def _poly_row_named(poly: LinPoly,
                    index: Mapping[str, int]) -> Dict[int, float]:
    row: Dict[int, float] = {}
    for var, coeff in poly.coeffs.items():
        try:
            row[index[var]] = row.get(index[var], 0.0) + coeff
        except KeyError:
            raise PlacementError(
                f"utility references unknown resource {var!r}") from None
    return row


def solve_heuristic(problem: PlacementProblem, redistribute: bool = True,
                    migrate: bool = True,
                    registry=None) -> PlacementSolution:
    """Run Alg. 1 on ``problem``.

    ``registry`` (a :class:`repro.obs.metrics.MetricsRegistry`) records the
    solve count, runtime histogram, and last objective when provided.
    """
    solution = HeuristicPlacementSolver(
        problem, redistribute=redistribute, migrate=migrate).solve()
    if registry is not None:
        record_solve_metrics(registry, solution)
    return solution


def record_solve_metrics(registry, solution: PlacementSolution) -> None:
    """Register one solver run's outcome under ``farm_placement_*``."""
    labels = {"solver": solution.solver}
    registry.counter(
        "farm_placement_solves_total",
        "Placement optimizations run, by solver.", labels=labels).inc()
    registry.histogram(
        "farm_placement_runtime_seconds",
        "Wall-clock solver runtime.", labels=labels
    ).observe(solution.runtime_s)
    registry.gauge(
        "farm_placement_objective",
        "Objective value of the most recent solution.", labels=labels
    ).set(solution.objective)
    registry.gauge(
        "farm_placement_placed_seeds",
        "Seeds placed by the most recent solution.", labels=labels
    ).set(len(solution.placement))
