"""Exact MILP formulation of the seed-placement problem (SIV-D).

This is the "Gurobi" side of Fig. 7, realized with HiGHS branch-and-bound
(:func:`scipy.optimize.milp`).  The formulation follows the paper,
including the linearization trick: a term ``plc(s,n) * f(res(s,n,r_i))``
with linear ``f`` is rewritten using (C3) (``plc = 0`` forces ``res = 0``)
as ``f(res) - (1 - plc) * f(0)``.

Variables
---------
``plc[s,n,k]``   binary: seed ``s`` on switch ``n`` using utility piece ``k``
``tplc[t]``      binary: task ``t`` fully placed (C1)
``res[s,n,r]``   continuous allocation
``u[s,n,k]``     epigraph variable for the concave (min-of-linear) utility
``pollres[n,p]`` aggregated polling demand per subject (SIV-B-b)
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.almanac.poly import LinPoly
from repro.errors import PlacementError
from repro.placement.linprog_builder import INF, LinProgram
from repro.placement.model import (
    PlacementProblem,
    PlacementSolution,
    compute_objective,
)


def _poly_row(poly: LinPoly, res_index: Dict[str, int]) -> Dict[int, float]:
    """Coefficient row of a LinPoly over this seed-at-switch's res vars."""
    row: Dict[int, float] = {}
    for var, coeff in poly.coeffs.items():
        try:
            row[res_index[var]] = row.get(res_index[var], 0.0) + coeff
        except KeyError:
            raise PlacementError(
                f"utility references unknown resource {var!r}") from None
    return row


class MilpPlacementSolver:
    """Builds and solves the full MILP.

    ``warm_start`` (an incumbent :class:`PlacementSolution`) enables the
    incremental mode: every seed listed in ``frozen_seeds`` has its
    ``plc`` binaries pinned to the incumbent assignment, shrinking the
    branch-and-bound space to the unfrozen (churned) seeds.  HiGHS via
    :func:`scipy.optimize.milp` exposes no true MIP-start interface, so
    freezing the clean seeds is how the incumbent is injected; piece
    choice stays free (only the *switch* is pinned), so the LP relaxation
    can still re-split a frozen seed's utility pieces.
    """

    def __init__(self, problem: PlacementProblem,
                 warm_start: Optional[PlacementSolution] = None,
                 frozen_seeds: Optional[Iterable[str]] = None) -> None:
        self.problem = problem
        self.warm_start = warm_start
        self.frozen_seeds = (frozenset(frozen_seeds)
                             if frozen_seeds is not None
                             else frozenset())
        self.program = LinProgram(maximize=True)
        self._plc: Dict[Tuple[str, int, int], int] = {}
        self._res: Dict[Tuple[str, int, str], int] = {}
        self._u: Dict[Tuple[str, int, int], int] = {}
        self._tplc: Dict[str, int] = {}
        self._pollres: Dict[Tuple[int, FrozenSet], int] = {}
        self._resource_caps = {
            r: max((a.get(r, 0.0) for a in problem.available.values()),
                   default=0.0)
            for r in problem.resource_types}

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        problem = self.problem
        lp = self.program
        for task in problem.tasks:
            lower = 1.0 if task.mandatory else 0.0
            self._tplc[task.task_id] = lp.add_var(
                f"tplc[{task.task_id}]", lb=lower, ub=1.0, integer=True)
        for task in problem.tasks:
            for seed in task.seeds:
                self._build_seed(task.task_id, seed)
        self._build_switch_capacity()
        if self.warm_start is not None and self.frozen_seeds:
            self._apply_warm_start()

    def _apply_warm_start(self) -> None:
        """Pin frozen seeds' switch choice to the warm-start incumbent.

        A frozen seed with no incumbent home has all its ``plc`` binaries
        forced to 0 (its task stays dropped); a frozen seed whose home is
        no longer a candidate is left free — pinning it would make the
        model infeasible rather than re-placing it.
        """
        lp = self.program
        frozen = 0
        for seed in self.problem.all_seeds():
            sid = seed.seed_id
            if sid not in self.frozen_seeds:
                continue
            home = self.warm_start.placement.get(sid)
            if home is not None and home not in seed.candidates:
                continue
            for n in seed.candidates:
                if n == home:
                    continue
                for k in range(len(seed.utility.pieces)):
                    index = self._plc.get((sid, n, k))
                    if index is not None:
                        lp.add_constraint({index: 1.0}, lb=0.0, ub=0.0)
            frozen += 1
        self._frozen_applied = frozen

    def _build_seed(self, task_id: str, seed) -> None:
        problem = self.problem
        lp = self.program
        sid = seed.seed_id
        u_max = max(seed.utility.pieces[k].utility.upper_bound(
            self._resource_caps) for k in range(len(seed.utility.pieces)))
        u_max = max(u_max, 0.0)
        plc_indices: List[int] = []
        for n in seed.candidates:
            res_index: Dict[str, int] = {}
            for r in problem.resource_types:
                cap = problem.available[n].get(r, 0.0)
                res_index[(r)] = lp.add_var(f"res[{sid},{n},{r}]", 0.0, cap)
                self._res[(sid, n, r)] = res_index[r]
            plc_here: List[int] = []
            for k, piece in enumerate(seed.utility.pieces):
                plc = lp.add_binary(f"plc[{sid},{n},{k}]")
                self._plc[(sid, n, k)] = plc
                plc_here.append(plc)
                plc_indices.append(plc)
                # C2 with big-M: c(res) >= -M * (1 - plc)
                for constraint in piece.constraints:
                    row = _poly_row(constraint, res_index)
                    big_m = abs(constraint.const) + sum(
                        abs(c) * problem.available[n].get(v, 0.0)
                        for v, c in constraint.coeffs.items()) + 1.0
                    row[plc] = row.get(plc, 0.0) - big_m
                    lp.add_constraint(row,
                                      lb=-constraint.const - big_m, ub=INF)
                # Utility epigraph.
                u_var = lp.add_var(f"u[{sid},{n},{k}]", 0.0, max(u_max, 0.0))
                self._u[(sid, n, k)] = u_var
                lp.add_objective_term(u_var, 1.0)
                # u <= Umax * plc
                lp.add_constraint({u_var: 1.0, plc: -u_max}, lb=-INF, ub=0.0)
                for term in piece.utility.terms:
                    # u <= term(res) + M_u * (1 - plc)
                    row = _poly_row(term, res_index)
                    slack = u_max + abs(term.const) + sum(
                        abs(c) * problem.available[n].get(v, 0.0)
                        for v, c in term.coeffs.items()) + 1.0
                    con = {u_var: 1.0}
                    for var, coeff in row.items():
                        con[var] = con.get(var, 0.0) - coeff
                    con[plc] = con.get(plc, 0.0) + slack
                    lp.add_constraint(con, lb=-INF, ub=term.const + slack)
            # C3: res <= cap * sum_k plc
            for r in problem.resource_types:
                cap = problem.available[n].get(r, 0.0)
                con = {self._res[(sid, n, r)]: 1.0}
                for plc in plc_here:
                    con[plc] = con.get(plc, 0.0) - cap
                lp.add_constraint(con, lb=-INF, ub=0.0)
        # C1: sum over (n, k) plc == tplc(task)
        con = {plc: 1.0 for plc in plc_indices}
        tplc = self._tplc[task_id]
        con[tplc] = con.get(tplc, 0.0) - 1.0
        lp.add_constraint(con, lb=0.0, ub=0.0)

    def _migration_expr(self, seed) -> Optional[Tuple[int, Dict[int, float]]]:
        """(previous switch, linear expr of migr(s, n0)) or None.

        ``migr(s, n0) = sum over n' != n0, k of plc[s, n', k]`` since
        ``plc'(s, n0) = 1`` is known.
        """
        prev = self.problem.previous_placement.get(seed.seed_id)
        if prev is None:
            return None
        expr: Dict[int, float] = {}
        for n in seed.candidates:
            if n == prev:
                continue
            for k in range(len(seed.utility.pieces)):
                index = self._plc.get((seed.seed_id, n, k))
                if index is not None:
                    expr[index] = expr.get(index, 0.0) + 1.0
        if not expr:
            return None
        return prev, expr

    def _build_switch_capacity(self) -> None:
        problem = self.problem
        lp = self.program
        # Group per-switch contributions.
        usage_rows: Dict[Tuple[int, str], Dict[int, float]] = {}
        poll_rows: Dict[int, List[int]] = {n: [] for n in problem.switches}

        def usage_row(n: int, r: str) -> Dict[int, float]:
            return usage_rows.setdefault((n, r), {})

        for task in problem.tasks:
            for seed in task.seeds:
                sid = seed.seed_id
                migration = self._migration_expr(seed)
                for n in seed.candidates:
                    plc_sum = {
                        self._plc[(sid, n, k)]: 1.0
                        for k in range(len(seed.utility.pieces))}
                    for r in problem.resource_types:
                        if r == problem.r_poll:
                            continue
                        row = usage_row(n, r)
                        idx = self._res[(sid, n, r)]
                        row[idx] = row.get(idx, 0.0) + 1.0
                    # Aggregated polling at n.
                    for demand in seed.poll_demands:
                        pollres = self._pollres_var(n, demand.subject)
                        inv = demand.inv_interval
                        # pollres >= alpha*w*(inv(res) - (1-sum plc)*inv(0))
                        scale = problem.alpha(n) * demand.weight
                        con: Dict[int, float] = {pollres: 1.0}
                        for var, coeff in inv.coeffs.items():
                            idx = self._res[(sid, n, var)]
                            con[idx] = con.get(idx, 0.0) - scale * coeff
                        for plc_idx in plc_sum:
                            con[plc_idx] = (con.get(plc_idx, 0.0)
                                            - scale * inv.const)
                        lp.add_constraint(con, lb=0.0, ub=INF)
                if migration is not None:
                    prev, expr = migration
                    prev_alloc = problem.previous_allocations.get(sid, {})
                    for r in problem.resource_types:
                        if r == problem.r_poll:
                            continue
                        amount = prev_alloc.get(r, 0.0)
                        if amount:
                            row = usage_row(prev, r)
                            for var, coeff in expr.items():
                                row[var] = row.get(var, 0.0) + coeff * amount
                    env = {res: prev_alloc.get(res, 0.0)
                           for res in problem.resource_types}
                    for demand in seed.poll_demands:
                        rate = (problem.alpha(prev) * demand.weight
                                * max(demand.inv_interval.evaluate(env), 0.0))
                        if rate <= 0.0:
                            continue
                        pollres = self._pollres_var(prev, demand.subject)
                        con = {pollres: 1.0}
                        for var, coeff in expr.items():
                            con[var] = con.get(var, 0.0) - coeff * rate
                        lp.add_constraint(con, lb=0.0, ub=INF)
        # C4 capacity rows.
        for (n, r), row in usage_rows.items():
            lp.add_constraint(row, lb=-INF,
                              ub=problem.available[n].get(r, 0.0))
        for n in problem.switches:
            indices = poll_rows.get(n, [])
            indices = [idx for (sw, _subj), idx in self._pollres.items()
                       if sw == n]
            if indices:
                lp.add_constraint({idx: 1.0 for idx in indices}, lb=-INF,
                                  ub=problem.available[n].get(
                                      problem.r_poll, 0.0))

    def _pollres_var(self, n: int, subject: FrozenSet) -> int:
        key = (n, subject)
        if key not in self._pollres:
            self._pollres[key] = self.program.add_var(
                f"pollres[{n},{hash(subject) & 0xffff:x}.{len(self._pollres)}]",
                0.0, INF)
        return self._pollres[key]

    # ------------------------------------------------------------------
    # Solve + extract
    # ------------------------------------------------------------------
    def solve(self, time_limit_s: Optional[float] = None) -> PlacementSolution:
        start = time.perf_counter()
        self.build()
        result = self.program.solve_milp(time_limit_s=time_limit_s)
        runtime = time.perf_counter() - start
        if not result.usable:
            return PlacementSolution(
                placement={}, allocations={}, objective=0.0,
                solver="milp", runtime_s=runtime, status=result.status)
        placement: Dict[str, int] = {}
        allocations: Dict[str, Dict[str, float]] = {}
        for (sid, n, _k), index in self._plc.items():
            if result.value(index) > 0.5:
                placement[sid] = n
        for sid, n in placement.items():
            allocations[sid] = {
                r: max(0.0, result.value(self._res[(sid, n, r)]))
                for r in self.problem.resource_types}
        placed_tasks = tuple(
            task.task_id for task in self.problem.tasks
            if result.value(self._tplc[task.task_id]) > 0.5)
        objective = compute_objective(self.problem, placement, allocations)
        solution = PlacementSolution(
            placement=placement, allocations=allocations,
            objective=objective, solver="milp", runtime_s=runtime,
            placed_tasks=placed_tasks, status=result.status)
        if self.warm_start is not None and self.frozen_seeds:
            solution.info.update({
                "warm_start": True,
                "frozen_seeds": getattr(self, "_frozen_applied", 0)})
        return solution


def solve_milp(problem: PlacementProblem,
               time_limit_s: Optional[float] = None,
               registry=None,
               warm_start: Optional[PlacementSolution] = None,
               frozen_seeds: Optional[Iterable[str]] = None
               ) -> PlacementSolution:
    """Solve placement exactly (up to ``time_limit_s``) with HiGHS.

    ``registry`` (a :class:`repro.obs.metrics.MetricsRegistry`) records the
    solve count, runtime histogram, and last objective when provided.
    ``warm_start`` + ``frozen_seeds`` pin the listed seeds to the
    incumbent placement (incremental mode; see
    :class:`MilpPlacementSolver`).
    """
    solution = MilpPlacementSolver(
        problem, warm_start=warm_start,
        frozen_seeds=frozen_seeds).solve(time_limit_s=time_limit_s)
    if registry is not None:
        from repro.placement.heuristic import record_solve_metrics
        record_solve_metrics(registry, solution)
    return solution
