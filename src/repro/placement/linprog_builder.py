"""A small LP/MILP builder on top of scipy (HiGHS).

Replaces the paper's Gurobi / rust ``lp-modeler`` dependencies.  Both the
MILP solver and the heuristic's LP redistribution phase express their
models through this builder; it keeps variable bookkeeping by name and
hands scipy sparse matrices to HiGHS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import LinearConstraint, linprog, milp

from repro.errors import PlacementError

INF = float("inf")


@dataclass
class SolveResult:
    """Uniform solver outcome."""

    status: str  # "optimal" | "feasible" | "infeasible" | "timeout" | "error"
    objective: float
    values: Optional[np.ndarray]
    message: str = ""

    @property
    def usable(self) -> bool:
        return self.values is not None

    def value(self, index: int) -> float:
        if self.values is None:
            raise PlacementError("no solution values available")
        return float(self.values[index])


class LinProgram:
    """Incrementally-built linear (or mixed-integer) program.

    Variables are referenced by integer index; ``name_index`` provides
    lookup by name for diagnostics and solution extraction.
    """

    def __init__(self, maximize: bool = True) -> None:
        self.maximize = maximize
        self._lb: List[float] = []
        self._ub: List[float] = []
        self._integer: List[bool] = []
        self._names: List[str] = []
        self.name_index: Dict[str, int] = {}
        self._objective: Dict[int, float] = {}
        # Constraint rows as (coeff dict, lb, ub)
        self._rows: List[Tuple[Dict[int, float], float, float]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    def add_var(self, name: str, lb: float = 0.0, ub: float = INF,
                integer: bool = False) -> int:
        if name in self.name_index:
            raise PlacementError(f"duplicate variable {name!r}")
        index = len(self._names)
        self._names.append(name)
        self.name_index[name] = index
        self._lb.append(lb)
        self._ub.append(ub)
        self._integer.append(integer)
        return index

    def add_binary(self, name: str) -> int:
        return self.add_var(name, 0.0, 1.0, integer=True)

    def add_constraint(self, coeffs: Mapping[int, float],
                       lb: float = -INF, ub: float = INF) -> None:
        """``lb <= sum(coeffs[i] * x_i) <= ub``"""
        clean = {i: float(c) for i, c in coeffs.items() if c != 0.0}
        self._rows.append((clean, lb, ub))

    def add_objective_term(self, index: int, coeff: float) -> None:
        self._objective[index] = self._objective.get(index, 0.0) + coeff

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _matrices(self):
        n = self.num_vars
        c = np.zeros(n)
        for index, coeff in self._objective.items():
            c[index] = coeff
        if self.maximize:
            c = -c
        if self._rows:
            data, rows, cols = [], [], []
            lbs, ubs = [], []
            for row_index, (coeffs, lb, ub) in enumerate(self._rows):
                for col, coeff in coeffs.items():
                    rows.append(row_index)
                    cols.append(col)
                    data.append(coeff)
                lbs.append(lb)
                ubs.append(ub)
            a_matrix = sparse.csr_matrix(
                (data, (rows, cols)), shape=(len(self._rows), n))
            constraint = LinearConstraint(a_matrix, np.array(lbs),
                                          np.array(ubs))
        else:
            constraint = None
        return c, constraint

    def solve_milp(self, time_limit_s: Optional[float] = None,
                   mip_rel_gap: float = 1e-4) -> SolveResult:
        """Solve as a MILP via HiGHS branch-and-bound."""
        if self.num_vars == 0:
            return SolveResult("optimal", 0.0, np.zeros(0))
        c, constraint = self._matrices()
        options: Dict[str, object] = {"mip_rel_gap": mip_rel_gap}
        if time_limit_s is not None:
            options["time_limit"] = float(time_limit_s)
        result = milp(
            c=c,
            constraints=constraint,
            integrality=np.array([1 if f else 0 for f in self._integer]),
            bounds=_bounds_from(self._lb, self._ub),
            options=options,
        )
        return self._interpret(result, c)

    def solve_lp(self, time_limit_s: Optional[float] = None) -> SolveResult:
        """Solve the LP relaxation (integrality dropped) via HiGHS."""
        if self.num_vars == 0:
            return SolveResult("optimal", 0.0, np.zeros(0))
        c, constraint = self._matrices()
        if constraint is not None:
            # linprog wants A_ub x <= b_ub and A_eq x == b_eq; split rows.
            a_ub_rows, b_ub = [], []
            a_eq_rows, b_eq = [], []
            matrix = constraint.A.tocsr()
            lbs, ubs = constraint.lb, constraint.ub
            for i in range(matrix.shape[0]):
                row = matrix.getrow(i)
                lb, ub = lbs[i], ubs[i]
                if lb == ub:
                    a_eq_rows.append(row)
                    b_eq.append(lb)
                else:
                    if ub < INF:
                        a_ub_rows.append(row)
                        b_ub.append(ub)
                    if lb > -INF:
                        a_ub_rows.append(-row)
                        b_ub.append(-lb)
            a_ub = sparse.vstack(a_ub_rows) if a_ub_rows else None
            a_eq = sparse.vstack(a_eq_rows) if a_eq_rows else None
        else:
            a_ub = a_eq = None
            b_ub = b_eq = []
        options = {}
        if time_limit_s is not None:
            options["time_limit"] = float(time_limit_s)
        result = linprog(
            c=c,
            A_ub=a_ub, b_ub=np.array(b_ub) if len(b_ub) else None,
            A_eq=a_eq, b_eq=np.array(b_eq) if len(b_eq) else None,
            bounds=list(zip(self._lb, [u if u < INF else None
                                       for u in self._ub])),
            method="highs",
            options=options,
        )
        return self._interpret(result, c)

    def _interpret(self, result, c: np.ndarray) -> SolveResult:
        status_map = {0: "optimal", 1: "timeout", 2: "infeasible",
                      3: "unbounded", 4: "error"}
        status = status_map.get(getattr(result, "status", 4), "error")
        if result.x is not None:
            objective = float(np.dot(c, result.x))
            if self.maximize:
                objective = -objective
            if status == "timeout":
                status = "feasible"
            return SolveResult(status, objective, np.asarray(result.x),
                               message=str(getattr(result, "message", "")))
        return SolveResult(status, float("nan"), None,
                           message=str(getattr(result, "message", "")))


def _bounds_from(lbs: List[float], ubs: List[float]):
    from scipy.optimize import Bounds
    return Bounds(np.array(lbs), np.array(ubs))
