"""Random placement-problem generator for the SVI-D experiment.

"Testing involves up to 10 different tasks (cf. Tab. I) comprising up to
10200 seeds and deploying them on 1040 switches.  For each seed count, we
conduct 10 runs with varying resource and placement needs."

Task templates mirror the shape of the Tab. I use cases: each has a
resource-constraint profile (vCPU/RAM floors), a utility style (constant,
linear in one resource, or min of two), and a polling profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.almanac.poly import (
    ConcaveUtility,
    LinPoly,
    PiecewiseUtility,
    UtilityPiece,
)
from repro.placement.model import (
    PlacementProblem,
    PollDemand,
    SeedSpec,
    TaskSpec,
)
from repro.switchsim.chassis import (
    ACCTON_AS5712,
    R_PCIE,
    R_RAM,
    R_VCPU,
    RESOURCE_TYPES,
    SwitchModel,
)


@dataclass(frozen=True)
class TaskTemplate:
    """Resource/utility shape of one Tab. I-style task."""

    name: str
    vcpu_floor: float
    ram_floor: float
    base_utility: float
    utility_style: str  # "const" | "linear" | "min"
    poll_weight: float  # atomic subjects touched per poll
    shared_subject: bool  # True: polls a switch-wide subject (aggregatable)


#: Profiles loosely following Tab. I's sixteen use cases.
TASK_TEMPLATES: Tuple[TaskTemplate, ...] = (
    TaskTemplate("heavy_hitter", 0.5, 64, 40.0, "min", 8.0, True),
    TaskTemplate("hierarchical_hh", 0.5, 96, 35.0, "min", 8.0, True),
    TaskTemplate("ddos", 1.0, 128, 60.0, "linear", 16.0, True),
    TaskTemplate("new_tcp_conn", 0.25, 32, 15.0, "const", 4.0, True),
    TaskTemplate("syn_flood", 0.5, 64, 50.0, "linear", 8.0, True),
    TaskTemplate("partial_tcp_flow", 0.5, 96, 30.0, "min", 8.0, False),
    TaskTemplate("slowloris", 0.25, 64, 25.0, "linear", 4.0, False),
    TaskTemplate("link_failure", 0.25, 32, 55.0, "const", 2.0, True),
    TaskTemplate("traffic_change", 0.25, 32, 20.0, "const", 4.0, True),
    TaskTemplate("superspreader", 0.5, 96, 45.0, "min", 8.0, True),
)


def _utility_for(template: TaskTemplate, rng: random.Random) -> PiecewiseUtility:
    """Build a randomized piecewise utility following the template style."""
    vcpu_floor = template.vcpu_floor * rng.uniform(0.8, 1.2)
    ram_floor = template.ram_floor * rng.uniform(0.8, 1.2)
    constraints = (
        LinPoly({R_VCPU: 1.0}, -vcpu_floor),
        LinPoly({R_RAM: 1.0}, -ram_floor),
    )
    base = template.base_utility * rng.uniform(0.9, 1.1)
    if template.utility_style == "const":
        utility = ConcaveUtility.constant(base)
    elif template.utility_style == "linear":
        slope = rng.uniform(5.0, 20.0)
        utility = ConcaveUtility.linear(
            LinPoly({R_VCPU: slope}, base))
    else:  # min
        slope = rng.uniform(5.0, 20.0)
        utility = ConcaveUtility((
            LinPoly({R_VCPU: slope}, base),
            LinPoly({R_PCIE: slope / 50.0}, base),
        ))
    return PiecewiseUtility([UtilityPiece(constraints=constraints,
                                          utility=utility)])


def _poll_demand_for(template: TaskTemplate, task_index: int,
                     rng: random.Random) -> PollDemand:
    """Polling demand: inverse interval grows with allocated PCIe units.

    Shared-subject tasks poll the canonical all-ports subject so co-located
    seeds of different tasks aggregate; others poll a task-private subject.
    """
    if template.shared_subject:
        subject = frozenset({("port", "all")})
    else:
        subject = frozenset({("tcam", f"{template.name}:{task_index}")})
    # inv_ival = PCIe / 10 (List. 2's ival = 10 / PCIe), plus a small floor.
    inv = LinPoly({R_PCIE: rng.uniform(0.05, 0.15)}, rng.uniform(0.0, 1.0))
    return PollDemand(subject=subject, inv_interval=inv,
                      weight=template.poll_weight)


def generate_problem(num_seeds: int, num_switches: int,
                     num_tasks: int = 10,
                     seed: int = 0,
                     model: SwitchModel = ACCTON_AS5712,
                     candidate_fanout: int = 3,
                     previous_fraction: float = 0.0,
                     ) -> PlacementProblem:
    """Generate one SVI-D instance.

    Seeds are distributed round-robin over ``num_tasks`` task instances;
    each seed's ``N^s`` is a random subset of ``candidate_fanout`` switches.
    ``previous_fraction`` of the seeds get a previous placement so that
    migration accounting participates.
    """
    if num_seeds <= 0 or num_switches <= 0:
        raise ValueError("need positive seed and switch counts")
    rng = random.Random(seed)
    switch_ids = list(range(1, num_switches + 1))
    available = {}
    for n in switch_ids:
        base = model.available_resources()
        # Heterogeneous fleet: +/-25% capacity jitter.
        available[n] = {r: v * rng.uniform(0.75, 1.25)
                        for r, v in base.items()}
    num_tasks = max(1, min(num_tasks, num_seeds))
    tasks: List[TaskSpec] = []
    previous_placement: Dict[str, int] = {}
    previous_allocations: Dict[str, Dict[str, float]] = {}
    seeds_per_task = [num_seeds // num_tasks] * num_tasks
    for i in range(num_seeds % num_tasks):
        seeds_per_task[i] += 1
    for task_index in range(num_tasks):
        template = TASK_TEMPLATES[task_index % len(TASK_TEMPLATES)]
        task_id = f"{template.name}#{task_index}"
        seeds: List[SeedSpec] = []
        for seed_index in range(seeds_per_task[task_index]):
            fanout = min(candidate_fanout, num_switches)
            candidates = tuple(sorted(rng.sample(switch_ids, fanout)))
            utility = _utility_for(template, rng)
            demand = _poll_demand_for(template, task_index, rng)
            seed_id = f"{task_id}/s{seed_index}"
            seeds.append(SeedSpec(seed_id=seed_id, task_id=task_id,
                                  candidates=candidates, utility=utility,
                                  poll_demands=(demand,)))
            if rng.random() < previous_fraction:
                prev = rng.choice(candidates)
                previous_placement[seed_id] = prev
                piece = utility.pieces[0]
                alloc = {r: 0.0 for r in RESOURCE_TYPES}
                for constraint in piece.constraints:
                    if len(constraint.coeffs) == 1:
                        (var, coeff), = constraint.coeffs.items()
                        if coeff > 0:
                            alloc[var] = max(alloc[var],
                                             -constraint.const / coeff)
                previous_allocations[seed_id] = alloc
        tasks.append(TaskSpec(task_id=task_id, seeds=seeds))
    return PlacementProblem(
        tasks=tasks,
        available=available,
        resource_types=RESOURCE_TYPES,
        r_poll=R_PCIE,
        previous_placement=previous_placement,
        previous_allocations=previous_allocations,
    )
