"""Warm-started incremental re-placement under churn.

FARM re-solves seed placement whenever the workload shifts; at production
scale a full Alg. 1 / MILP re-run per churn event is the management-plane
bottleneck.  This module adds the incremental mode:

* :class:`ChurnDelta` — a declarative description of what changed since
  the incumbent solve: tasks/seeds added or removed, switch capacities
  resized, switches added/removed, per-seed polling demand changes.
* :func:`apply_delta` — rewrites a :class:`PlacementProblem` under a
  delta, threading the incumbent placement in as ``plc'`` so migration
  accounting stays exact.
* :class:`IncrementalPlacementSolver` — starts from the incumbent
  :class:`PlacementSolution`, warm-committing every *clean* seed straight
  into the heuristic's ``_SwitchState`` bookkeeping, then re-runs the
  greedy phase, the per-switch LPs, and the migration-benefit pass only
  over the *dirty set*: switches whose residual capacity or poll
  aggregation changed, and the seeds living on (or newly aimed at) them.
  Dirtiness propagates — committing or evicting a seed marks its switch
  touched, and touched switches join the LP/migration scope.
* Fallback: when the delta's blast radius exceeds ``fallback_ratio`` of
  the fleet (seeds or switches), a full :class:`HeuristicPlacementSolver`
  run is cheaper *and* better — the incremental solver detects this and
  delegates, recording ``info["fallback"]``.  ``REPRO_FULL_RESOLVE=1``
  forces the full path unconditionally (escape hatch).

The differential churn-test harness (``tests/placement/test_incremental``
and ``test_churn_properties``) pins this module to the reference
solver: single-delta cases must match the full re-solve exactly, random
churn sequences must stay feasible and within (1 - eps) of from-scratch
utility, and the whole pipeline must be bit-deterministic.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import PlacementError
from repro.placement.heuristic import (
    HeuristicPlacementSolver,
    record_solve_metrics,
)
from repro.placement.model import (
    PlacementProblem,
    PlacementSolution,
    PollDemand,
    SeedSpec,
    TaskSpec,
    compute_objective,
)

#: Setting this environment variable to ``1`` disables every incremental
#: shortcut: ``solve_incremental`` (and the seeder's scoped re-solves)
#: always run the full reference heuristic.
FULL_RESOLVE_ENV = "REPRO_FULL_RESOLVE"

#: Default blast-radius threshold: if more than this fraction of seeds or
#: switches is dirty, fall back to a full re-solve.
DEFAULT_FALLBACK_RATIO = 0.3


class _FallbackNeeded(Exception):
    """Internal: the incremental pass would drop a previously-placed task."""


@dataclass(frozen=True)
class ChurnDelta:
    """One churn event, relative to the problem the incumbent solved.

    All fields compose; an all-defaults delta is empty (no-op).

    ``capacity_changes`` maps ``switch -> {resource: new absolute
    capacity}``; a switch id not present in the base problem is *added*
    with the given capacities (unnamed resources start at 0).
    ``poll_changes`` replaces a seed's whole ``poll_demands`` tuple.
    """

    added_tasks: Tuple[TaskSpec, ...] = ()
    removed_tasks: Tuple[str, ...] = ()
    removed_seeds: Tuple[str, ...] = ()
    capacity_changes: Mapping[int, Mapping[str, float]] = field(
        default_factory=dict)
    poll_changes: Mapping[str, Tuple[PollDemand, ...]] = field(
        default_factory=dict)
    removed_switches: Tuple[int, ...] = ()

    def is_empty(self) -> bool:
        return not (self.added_tasks or self.removed_tasks
                    or self.removed_seeds or self.capacity_changes
                    or self.poll_changes or self.removed_switches)


def apply_delta(problem: PlacementProblem, delta: ChurnDelta,
                incumbent: Optional[PlacementSolution] = None
                ) -> PlacementProblem:
    """The post-churn problem: ``problem`` with ``delta`` applied.

    ``incumbent`` (when given) becomes the new problem's previous
    placement/allocations — the ``plc'`` the next solve migrates from.
    A task whose seed loses every candidate switch is dropped entirely
    (C1 makes it unplaceable); dropping a *mandatory* task raises.
    """
    removed_tasks = set(delta.removed_tasks)
    removed_seeds = set(delta.removed_seeds)
    removed_switches = set(delta.removed_switches)
    poll_changes = dict(delta.poll_changes)

    available: Dict[int, Dict[str, float]] = {
        n: dict(res) for n, res in problem.available.items()
        if n not in removed_switches}
    for n, changes in delta.capacity_changes.items():
        if n in removed_switches:
            continue
        base = available.setdefault(
            n, {r: 0.0 for r in problem.resource_types})
        for r, v in changes.items():
            base[r] = float(v)

    tasks: List[TaskSpec] = []
    for task in list(problem.tasks) + list(delta.added_tasks):
        if task.task_id in removed_tasks:
            continue
        seeds: List[SeedSpec] = []
        unplaceable = False
        for seed in task.seeds:
            if seed.seed_id in removed_seeds:
                continue
            candidates = tuple(n for n in seed.candidates if n in available)
            if not candidates:
                unplaceable = True
                break
            demands = poll_changes.get(seed.seed_id, seed.poll_demands)
            if (candidates != seed.candidates
                    or demands is not seed.poll_demands):
                seed = SeedSpec(
                    seed_id=seed.seed_id, task_id=seed.task_id,
                    candidates=candidates, utility=seed.utility,
                    poll_demands=tuple(demands))
            seeds.append(seed)
        if unplaceable:
            if task.mandatory:
                raise PlacementError(
                    f"mandatory task {task.task_id!r} lost every candidate "
                    f"switch under the churn delta")
            continue
        if not seeds:
            continue
        tasks.append(TaskSpec(task_id=task.task_id, seeds=seeds,
                              mandatory=task.mandatory))

    prev_p = (incumbent.placement if incumbent is not None
              else problem.previous_placement)
    prev_a = (incumbent.allocations if incumbent is not None
              else problem.previous_allocations)
    seed_ids = {s.seed_id for t in tasks for s in t.seeds}
    previous_placement = {sid: n for sid, n in prev_p.items()
                          if sid in seed_ids and n in available}
    previous_allocations = {sid: dict(prev_a.get(sid, {}))
                            for sid in previous_placement}
    alpha = {n: a for n, a in problem.alpha_poll.items() if n in available}
    return PlacementProblem(
        tasks=tasks, available=available,
        resource_types=problem.resource_types, r_poll=problem.r_poll,
        alpha_poll=alpha,
        previous_placement=previous_placement,
        previous_allocations=previous_allocations)


def compute_dirty(problem: PlacementProblem,
                  incumbent: PlacementSolution,
                  delta: Optional[ChurnDelta] = None
                  ) -> Tuple[Set[int], Set[str]]:
    """(dirty switches, dirty seeds) of ``delta`` against ``incumbent``.

    Dirty switches: resized/added switches, plus every switch whose
    residual capacity or poll aggregation changed because a seed it
    hosted vanished or re-declared its polling.  Dirty seeds: seeds with
    an *invalidated* home (orphaned by a switch removal or candidate
    shrink), residents of dirty switches, and — the key pruning — seeds
    the incumbent left unplaced only when one of their candidates is
    dirty: clean switches are state-identical to the incumbent, so a
    task that did not fit there before still does not.  New seeds (from
    ``delta.added_tasks``) are always dirty; without a delta every
    homeless seed is conservatively dirty.
    """
    available = set(problem.available)
    dirty_switches: Set[int] = set()
    dirty_seeds: Set[str] = set()
    poll_changed: Set[str] = set()
    new_seeds: Set[str] = set()
    if delta is not None:
        dirty_switches |= {n for n in delta.capacity_changes
                           if n in available}
        poll_changed = set(delta.poll_changes)
        new_seeds = {s.seed_id for t in delta.added_tasks for s in t.seeds}

    placement = incumbent.placement
    live_ids = {s.seed_id for s in problem.all_seeds()}
    # Freed capacity: incumbent residents that no longer exist.
    for sid, n in placement.items():
        if sid not in live_ids and n in available:
            dirty_switches.add(n)
    for seed in problem.all_seeds():
        sid = seed.seed_id
        home = placement.get(sid)
        if sid in poll_changed and home is not None and home in available:
            dirty_switches.add(home)

    for seed in problem.all_seeds():
        sid = seed.seed_id
        home = placement.get(sid)
        if home is None:
            if (delta is None or sid in new_seeds
                    or any(n in dirty_switches for n in seed.candidates)):
                dirty_seeds.add(sid)
            continue
        if home not in available or home not in seed.candidates:
            dirty_seeds.add(sid)
            continue
        if sid in poll_changed or home in dirty_switches:
            dirty_seeds.add(sid)
    # C1: a dirty member drags its *unplaced* siblings along — placing
    # only the dirty subset of an unplaced task would violate atomicity.
    for task in problem.tasks:
        if any(s.seed_id in dirty_seeds for s in task.seeds):
            for s in task.seeds:
                if placement.get(s.seed_id) is None:
                    dirty_seeds.add(s.seed_id)
    return dirty_switches, dirty_seeds


def _with_incumbent_previous(problem: PlacementProblem,
                             incumbent: PlacementSolution
                             ) -> PlacementProblem:
    """A shallow view of ``problem`` whose ``plc'`` is the incumbent.

    Migration residue accounting (double occupancy in transit) must be
    measured against where the seeds actually sit *now*; this normalizes
    the problem so callers need not keep ``previous_*`` in sync by hand.
    """
    seed_ids = {s.seed_id for s in problem.all_seeds()}
    prev_p = {sid: n for sid, n in incumbent.placement.items()
              if sid in seed_ids and n in problem.available}
    prev_a = {sid: dict(incumbent.allocations.get(sid, {}))
              for sid in prev_p}
    if (prev_p == problem.previous_placement
            and prev_a == problem.previous_allocations):
        return problem
    eff = copy.copy(problem)  # shares tasks/available; replaces plc' only
    eff.previous_placement = prev_p
    eff.previous_allocations = prev_a
    return eff


class IncrementalPlacementSolver(HeuristicPlacementSolver):
    """Alg. 1 restarted from the incumbent, restricted to the dirty set.

    ``delta`` derives the dirty set automatically; ``scope`` (a set of
    switch ids) overrides it for the seeder's targeted re-solves — in
    scope mode only seeds living on scoped switches (or homeless ones)
    may move, matching the remediation engine's blast-radius semantics.
    """

    def __init__(self, problem: PlacementProblem,
                 incumbent: PlacementSolution,
                 delta: Optional[ChurnDelta] = None,
                 scope: Optional[Set[int]] = None,
                 fallback_ratio: float = DEFAULT_FALLBACK_RATIO,
                 redistribute: bool = True, migrate: bool = True) -> None:
        problem = _with_incumbent_previous(problem, incumbent)
        super().__init__(problem, redistribute=redistribute, migrate=migrate)
        self.incumbent = incumbent
        self.delta = delta
        self.fallback_ratio = fallback_ratio
        self.strict_scope = scope is not None
        self._touched: Set[int] = set()
        self._tracking = False
        if scope is not None:
            self.dirty_switches = {n for n in scope if n in self.states}
            self.dirty_seeds = set()
            for seed in problem.all_seeds():
                home = incumbent.placement.get(seed.seed_id)
                if home is None:
                    # Homeless under an explicit scope means evicted from
                    # it (e.g. the scoped switch was just cordoned out of
                    # the problem) or a straggler — both must re-place.
                    self.dirty_seeds.add(seed.seed_id)
                elif (home in self.dirty_switches
                        or home not in self.states
                        or home not in seed.candidates):
                    self.dirty_seeds.add(seed.seed_id)
            for task in problem.tasks:
                if any(s.seed_id in self.dirty_seeds for s in task.seeds):
                    for s in task.seeds:
                        if incumbent.placement.get(s.seed_id) is None:
                            self.dirty_seeds.add(s.seed_id)
        else:
            self.dirty_switches, self.dirty_seeds = compute_dirty(
                problem, incumbent, delta)
        #: Dirty seeds that hold incumbent state (placed somewhere).  The
        #: rest are unplaced-task retries, which cost almost nothing
        #: thanks to the prescreen in :meth:`_greedy_dirty`, so the
        #: fallback heuristic ignores them.
        self._dirty_placed = {
            sid for sid in self.dirty_seeds
            if incumbent.placement.get(sid) is not None}
        #: Seeds introduced by this delta: never prescreen-skipped — they
        #: have not had a fair shot yet (including the reclaim pass).
        self._new_seeds: Set[str] = (
            {s.seed_id for t in delta.added_tasks for s in t.seeds}
            if delta is not None else set())

    # ------------------------------------------------------------------
    # Dirty-set propagation: every state mutation marks its switch.
    # ------------------------------------------------------------------
    def _commit(self, seed: SeedSpec, switch: int, piece_index: int,
                alloc: Dict[str, float]) -> None:
        super()._commit(seed, switch, piece_index, alloc)
        if self._tracking:
            self._touched.add(switch)
            prev = self.problem.previous_placement.get(seed.seed_id)
            if prev is not None and prev != switch and prev in self.states:
                self._touched.add(prev)  # migration residue landed there

    def _uncommit(self, seed_id: str) -> None:
        switch = self.placement.get(seed_id)
        super()._uncommit(seed_id)
        if self._tracking and switch is not None:
            self._touched.add(switch)
            prev = self.problem.previous_placement.get(seed_id)
            if prev is not None and prev in self.states:
                self._touched.add(prev)

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def _recover_piece(self, seed: SeedSpec,
                       alloc: Mapping[str, float]) -> Optional[int]:
        """The utility piece the incumbent allocation satisfies best."""
        env = {r: alloc.get(r, 0.0) for r in self.problem.resource_types}
        best: Optional[Tuple[float, int]] = None
        for k, piece in enumerate(seed.utility.pieces):
            if piece.feasible(env):
                value = piece.utility.evaluate(env)
                if best is None or value > best[0]:
                    best = (value, k)
        return best[1] if best is not None else None

    def _warm_start(self) -> None:
        """Commit every clean seed at its incumbent spot, bookkeeping only.

        No feasibility checks run: a clean seed sits on a clean switch,
        and nothing about either changed.  A seed whose incumbent
        allocation no longer satisfies any utility piece (shouldn't
        happen, but deltas are caller-supplied) degrades to dirty.
        """
        for task in self.problem.tasks:
            for seed in task.seeds:
                sid = seed.seed_id
                if sid in self.dirty_seeds:
                    continue
                home = self.incumbent.placement.get(sid)
                if home is None:
                    continue  # clean-but-unplaced: stays unplaced
                alloc = dict(self.incumbent.allocations.get(sid, {}))
                piece = self._recover_piece(seed, alloc)
                if piece is None:
                    self.dirty_seeds.add(sid)
                    if home is not None and home in self.states:
                        self.dirty_switches.add(home)
                    continue
                self._commit(seed, home, piece, alloc)
        self._tracking = True

    # ------------------------------------------------------------------
    # Greedy over the dirty set
    # ------------------------------------------------------------------
    def _reclaim_switch(self, state) -> bool:
        """Shrink a switch's residents back to minimal footprints.

        The incumbent's per-switch LP poured every spare unit into the
        residents; a newly arriving seed then sees no headroom even
        though a from-scratch solve would fit it easily.  Reclaiming
        (placements and piece choices untouched) restores the headroom;
        the final LP pass re-pours whatever is genuinely spare.
        """
        changed = False
        for sid in state.residents:
            seed = self._seed_by_id[sid]
            k = self.piece_choice[sid]
            piece = seed.utility.pieces[k]
            minimal = self._minimal_alloc_for(seed, k, piece)
            current = self.allocations[sid]
            if all(current.get(r, 0.0) <= minimal.get(r, 0.0) + 1e-12
                   for r in self.problem.resource_types):
                continue
            env = {r: minimal.get(r, 0.0)
                   for r in self.problem.resource_types}
            if not piece.feasible(env):
                continue  # multi-resource piece: keep the proven alloc
            self.allocations[sid] = dict(minimal)
            changed = True
        if changed:
            state.used = {
                r: sum(self.allocations[sid].get(r, 0.0)
                       for sid in state.residents)
                for r in self.problem.resource_types
                if r != self.problem.r_poll}
            self._recompute_poll_rates(state)
            self._touched.add(state.switch)
        return changed

    def _reclaim_for(self, seeds: Sequence[SeedSpec]) -> bool:
        switches = sorted({n for seed in seeds for n in seed.candidates
                           if n in self.states})
        changed = False
        for n in switches:
            if self._reclaim_switch(self.states[n]):
                changed = True
        return changed

    def _greedy_dirty(self) -> List[str]:
        """Greedy placement restricted to dirty seeds; returns placed tasks.

        Clean siblings of a dirty seed stay warm-committed unless the
        dirty member cannot be placed at all — then C1 forces the whole
        task out (clean siblings are evicted too, and their switches join
        the touched set for the LP pass).
        """
        placed_tasks: List[str] = []
        for task in self._task_order():
            members = [s for s in task.seeds
                       if s.seed_id in self.dirty_seeds]
            if not members:
                if all(s.seed_id in self.placement for s in task.seeds):
                    placed_tasks.append(task.task_id)
                continue
            if (not self.strict_scope
                    and all(self.incumbent.placement.get(s.seed_id) is None
                            for s in task.seeds)
                    and not any(s.seed_id in self._new_seeds
                                for s in task.seeds)):
                # Unplaced-task retry: prescreen without committing.
                # Commits only ever shrink later members' options, so a
                # member with no feasible spot *now* dooms the task — the
                # reference greedy would discover the same after a costly
                # commit-and-rollback cycle.
                if any(self._best_option(s) is None for s in task.seeds):
                    continue
            committed: List[str] = []
            remaining = list(members)
            failed = False
            reclaimed = False
            while remaining:
                options = []
                for seed in remaining:
                    option = self._best_option(seed)
                    if option is not None:
                        options.append((option[0], seed, option))
                if not options:
                    if not reclaimed:
                        reclaimed = True
                        if self._reclaim_for(remaining):
                            continue
                    failed = True
                    break
                options.sort(key=lambda item: (-item[0], item[1].seed_id))
                _score, seed, (_s, n, k, alloc) = options[0]
                self._commit(seed, n, k, alloc)
                committed.append(seed.seed_id)
                remaining.remove(seed)
            if failed:
                # Dropping a task the incumbent had placed (or a
                # mandatory one) is a quality cliff the full re-solve
                # usually avoids by repacking globally — escalate.
                if task.mandatory or any(
                        self.incumbent.placement.get(s.seed_id) is not None
                        for s in task.seeds):
                    raise _FallbackNeeded(task.task_id)
                for sid in committed:
                    self._uncommit(sid)
                for sibling in task.seeds:
                    if sibling.seed_id in self.placement:
                        self._uncommit(sibling.seed_id)
            else:
                placed_tasks.append(task.task_id)
        return placed_tasks

    # ------------------------------------------------------------------
    # Scoped LP + migration
    # ------------------------------------------------------------------
    def redistribute(self) -> None:
        """Per-switch LPs on the dirty/touched switches only."""
        for n in sorted(self.dirty_switches | self._touched):
            state = self.states.get(n)
            if state is not None and state.residents:
                self._redistribute_switch(state)

    def _migration_eligible(self) -> Set[str]:
        """Seeds the benefit pass may move.

        Always: placed dirty seeds.  Without an explicit scope, also
        clean seeds with a candidate on a dirty/touched switch — freed
        capacity there may attract them, and moving them propagates
        dirtiness to their source switch.  Under an explicit scope the
        blast radius is a promise, so clean seeds stay pinned.
        """
        eligible = {sid for sid in self.dirty_seeds
                    if sid in self.placement}
        if not self.strict_scope:
            hot = self.dirty_switches | self._touched
            for sid, current in self.placement.items():
                if sid in eligible:
                    continue
                seed = self._seed_by_id[sid]
                if any(n in hot and n != current for n in seed.candidates):
                    eligible.add(sid)
        return eligible

    # ------------------------------------------------------------------
    # Fallback + entry point
    # ------------------------------------------------------------------
    def fallback_reason(self) -> Optional[str]:
        if os.environ.get(FULL_RESOLVE_ENV) == "1":
            return "env"
        total_seeds = self.problem.num_seeds
        total_switches = len(self.states)
        if not total_seeds or not total_switches:
            return None
        if len(self._dirty_placed) > self.fallback_ratio * total_seeds:
            return "dirty-seeds"
        if len(self.dirty_switches) > self.fallback_ratio * total_switches:
            return "dirty-switches"
        return None

    def _full_solve(self, reason: str, start: float) -> PlacementSolution:
        solution = HeuristicPlacementSolver(
            self.problem, redistribute=self.redistribute_enabled,
            migrate=self.migrate_enabled).solve()
        solution.runtime_s = time.perf_counter() - start
        solution.info.update({
            "incremental": False, "fallback": reason,
            "dirty_switches": len(self.dirty_switches),
            "dirty_seeds": len(self.dirty_seeds)})
        return solution

    def solve(self) -> PlacementSolution:
        start = time.perf_counter()
        reason = self.fallback_reason()
        if reason is not None:
            return self._full_solve(reason, start)
        self._warm_start()
        try:
            placed_tasks = self._greedy_dirty()
        except _FallbackNeeded:
            return self._full_solve("eviction", start)
        if self.redistribute_enabled:
            self.redistribute()
        if self.migrate_enabled:
            if self.migrate(eligible=self._migration_eligible()) \
                    and self.redistribute_enabled:
                self.redistribute()
        runtime = time.perf_counter() - start
        objective = compute_objective(self.problem, self.placement,
                                      self.allocations)
        solution = PlacementSolution(
            placement=dict(self.placement),
            allocations={sid: dict(alloc)
                         for sid, alloc in self.allocations.items()},
            objective=objective, solver="incremental", runtime_s=runtime,
            placed_tasks=tuple(sorted(placed_tasks)), status="ok")
        solution.info.update({
            "incremental": True,
            "dirty_switches": len(self.dirty_switches),
            "dirty_seeds": len(self.dirty_seeds),
            "touched_switches": len(self.dirty_switches | self._touched)})
        return solution


def solve_incremental(problem: PlacementProblem,
                      incumbent: PlacementSolution,
                      delta: Optional[ChurnDelta] = None,
                      scope: Optional[Set[int]] = None,
                      fallback_ratio: float = DEFAULT_FALLBACK_RATIO,
                      redistribute: bool = True, migrate: bool = True,
                      registry=None) -> PlacementSolution:
    """Incremental re-solve of ``problem`` starting from ``incumbent``.

    ``problem`` is the *post-churn* problem (see :func:`apply_delta`);
    ``delta`` scopes the dirty set (omit it to have the solver diff the
    incumbent against the problem), ``scope`` pins the dirty set to an
    explicit switch set instead.  An empty delta returns the incumbent
    untouched — same placement, same allocations, zero migrations.
    ``registry`` records solve metrics exactly like the full solvers.
    """
    forced_full = os.environ.get(FULL_RESOLVE_ENV) == "1"
    if (delta is not None and delta.is_empty() and scope is None
            and not forced_full):
        solution = PlacementSolution(
            placement=dict(incumbent.placement),
            allocations={sid: dict(alloc)
                         for sid, alloc in incumbent.allocations.items()},
            objective=compute_objective(problem, incumbent.placement,
                                        incumbent.allocations),
            solver="incremental", runtime_s=0.0,
            placed_tasks=incumbent.placed_tasks, status="incumbent")
        solution.info.update({"incremental": True, "noop": True,
                              "dirty_switches": 0, "dirty_seeds": 0})
        if registry is not None:
            record_solve_metrics(registry, solution)
        return solution
    solver = IncrementalPlacementSolver(
        problem, incumbent, delta=delta, scope=scope,
        fallback_ratio=fallback_ratio, redistribute=redistribute,
        migrate=migrate)
    solution = solver.solve()
    if registry is not None:
        record_solve_metrics(registry, solution)
    return solution
