"""The seed-placement optimization model (SIV).

Maximize monitoring utility (MU) subject to (C1)-(C4), accounting for
migration overhead and polling-aggregation benefits.  This module defines
the problem/solution data model and a validator; solvers live in
:mod:`repro.placement.milp` and :mod:`repro.placement.heuristic`.

Conventions
-----------
* Resource variables are named by resource type (vCPU, RAM, TCAM, PCIe).
* ``r_poll`` (default PCIe) is special: per-seed PCIe allocations control
  poll intervals, but switch capacity is charged through aggregated
  ``pollres(n, p)`` variables — the soil polls each subject once no matter
  how many seeds want it (SII-B-b).
* A seed's utility is piecewise (SIII-B-b); choosing a piece is part of
  the optimization ("splitting the seed into several copies").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Tuple

from repro.almanac.poly import LinPoly, PiecewiseUtility
from repro.errors import PlacementError

#: Tolerance for floating-point feasibility checks.
FEAS_TOL = 1e-6


@dataclass(frozen=True)
class PollDemand:
    """One poll variable's contribution to PCIe demand.

    ``subject`` identifies *what* is polled (``phi_enc`` output, hashable);
    ``inv_interval`` is the linear polynomial ``1 / y.ival`` over this
    seed's resource variables; ``weight`` scales per-poll cost by the
    number of atomic counters the subject covers.
    """

    subject: FrozenSet
    inv_interval: LinPoly
    weight: float = 1.0


@dataclass
class SeedSpec:
    """One seed as the optimizer sees it."""

    seed_id: str
    task_id: str
    candidates: Tuple[int, ...]  # N^s: allowed switches
    utility: PiecewiseUtility
    poll_demands: Tuple[PollDemand, ...] = ()

    def __post_init__(self) -> None:
        if not self.candidates:
            raise PlacementError(f"seed {self.seed_id!r} has no candidates")
        if len(set(self.candidates)) != len(self.candidates):
            raise PlacementError(
                f"seed {self.seed_id!r} has duplicate candidates")


@dataclass
class TaskSpec:
    """A task: all of its seeds are placed, or none (C1)."""

    task_id: str
    seeds: List[SeedSpec]
    mandatory: bool = False  # if True, dropping the task is an error

    def min_utility(self) -> float:
        return min(s.utility.min_utility() for s in self.seeds)


@dataclass
class PlacementProblem:
    """Full optimizer input (Tab. III's 'optimization input' rows)."""

    tasks: List[TaskSpec]
    available: Dict[int, Dict[str, float]]  # ares(n, r)
    resource_types: Tuple[str, ...]
    r_poll: str = "PCIe"
    alpha_poll: Dict[int, float] = field(default_factory=dict)
    #: plc' — the current placement, source of migration accounting.
    previous_placement: Dict[str, int] = field(default_factory=dict)
    #: res' — allocations under the current placement.
    previous_allocations: Dict[str, Dict[str, float]] = field(
        default_factory=dict)

    def __post_init__(self) -> None:
        seen = set()
        for task in self.tasks:
            for seed in task.seeds:
                if seed.seed_id in seen:
                    raise PlacementError(f"duplicate seed id {seed.seed_id!r}")
                seen.add(seed.seed_id)
                unknown = [n for n in seed.candidates if n not in self.available]
                if unknown:
                    raise PlacementError(
                        f"seed {seed.seed_id!r} references unknown switches "
                        f"{unknown}")
        if self.r_poll not in self.resource_types:
            raise PlacementError(
                f"r_poll {self.r_poll!r} not in resource types")

    # -- helpers -----------------------------------------------------------
    def all_seeds(self) -> List[SeedSpec]:
        return [seed for task in self.tasks for seed in task.seeds]

    def seed(self, seed_id: str) -> SeedSpec:
        for task in self.tasks:
            for seed in task.seeds:
                if seed.seed_id == seed_id:
                    return seed
        raise PlacementError(f"unknown seed {seed_id!r}")

    def task(self, task_id: str) -> TaskSpec:
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise PlacementError(f"unknown task {task_id!r}")

    def alpha(self, switch: int) -> float:
        return self.alpha_poll.get(switch, 1.0)

    @property
    def num_seeds(self) -> int:
        return sum(len(task.seeds) for task in self.tasks)

    @property
    def switches(self) -> List[int]:
        return sorted(self.available)


@dataclass
class PlacementSolution:
    """Solver output: where every placed seed goes and with what resources."""

    placement: Dict[str, int]  # seed_id -> switch (absent = task dropped)
    allocations: Dict[str, Dict[str, float]]  # seed_id -> {r: amount}
    objective: float
    solver: str
    runtime_s: float = 0.0
    placed_tasks: Tuple[str, ...] = ()
    status: str = "ok"
    #: Solver-specific diagnostics (e.g. the incremental solver's dirty-set
    #: sizes and fallback reason); never interpreted by the model layer.
    info: Dict[str, Any] = field(default_factory=dict)

    def migrated_seeds(self, problem: PlacementProblem) -> List[str]:
        """Seeds whose switch changed relative to the previous placement."""
        moved = []
        for seed_id, switch in self.placement.items():
            old = problem.previous_placement.get(seed_id)
            if old is not None and old != switch:
                moved.append(seed_id)
        return sorted(moved)


def compute_objective(problem: PlacementProblem,
                      placement: Mapping[str, int],
                      allocations: Mapping[str, Mapping[str, float]]) -> float:
    """Monitoring utility (MU) of a concrete assignment."""
    total = 0.0
    for task in problem.tasks:
        for seed in task.seeds:
            switch = placement.get(seed.seed_id)
            if switch is None:
                continue
            env = _full_env(problem, allocations.get(seed.seed_id, {}))
            total += seed.utility.evaluate(env)
    return total


def _full_env(problem: PlacementProblem,
              alloc: Mapping[str, float]) -> Dict[str, float]:
    env = {r: 0.0 for r in problem.resource_types}
    env.update(alloc)
    return env


def validate_solution(problem: PlacementProblem,
                      solution: PlacementSolution,
                      tol: float = FEAS_TOL) -> List[str]:
    """Check (C1)-(C4) plus aggregation accounting; returns violations.

    An empty list means the solution is feasible.  Property-based tests run
    every solver's output through this.
    """
    errors: List[str] = []
    placement = solution.placement
    allocations = solution.allocations

    # C1: task atomicity + every placed seed on a candidate switch.
    for task in problem.tasks:
        placed = [s for s in task.seeds if s.seed_id in placement]
        if placed and len(placed) != len(task.seeds):
            errors.append(
                f"C1: task {task.task_id!r} partially placed "
                f"({len(placed)}/{len(task.seeds)})")
        if task.mandatory and not placed:
            errors.append(f"C1: mandatory task {task.task_id!r} dropped")
        for seed in placed:
            if placement[seed.seed_id] not in seed.candidates:
                errors.append(
                    f"C1: seed {seed.seed_id!r} placed on "
                    f"{placement[seed.seed_id]} outside N^s {seed.candidates}")

    # C2: allocations satisfy some utility piece.
    for seed in problem.all_seeds():
        if seed.seed_id not in placement:
            if seed.seed_id in allocations and any(
                    v > tol for v in allocations[seed.seed_id].values()):
                errors.append(
                    f"C3: unplaced seed {seed.seed_id!r} holds resources")
            continue
        env = _full_env(problem, allocations.get(seed.seed_id, {}))
        if not seed.utility.feasible(env):
            errors.append(
                f"C2: seed {seed.seed_id!r} allocation {env} satisfies "
                f"no utility piece")

    # C3 + C4: per-switch totals, with migration double-occupancy and
    # aggregated polling.
    for switch in problem.switches:
        ares = problem.available[switch]
        usage = {r: 0.0 for r in problem.resource_types}
        pollres: Dict[FrozenSet, float] = {}
        for seed in problem.all_seeds():
            placed_here = placement.get(seed.seed_id) == switch
            migrating_from_here = (
                seed.seed_id in placement
                and problem.previous_placement.get(seed.seed_id) == switch
                and placement[seed.seed_id] != switch)
            if placed_here:
                alloc = allocations.get(seed.seed_id, {})
                for r in problem.resource_types:
                    amount = alloc.get(r, 0.0)
                    if amount < -tol:
                        errors.append(
                            f"negative allocation {r} for {seed.seed_id!r}")
                    if amount > ares.get(r, 0.0) + tol:
                        errors.append(
                            f"C3: seed {seed.seed_id!r} gets {amount} {r} "
                            f"on switch {switch} (cap {ares.get(r, 0.0)})")
                    if r != problem.r_poll:
                        usage[r] += amount
                env = _full_env(problem, alloc)
                for demand in seed.poll_demands:
                    rate = (problem.alpha(switch) * demand.weight
                            * max(demand.inv_interval.evaluate(env), 0.0))
                    key = demand.subject
                    pollres[key] = max(pollres.get(key, 0.0), rate)
            elif migrating_from_here:
                # During migration the old copy still holds resources.
                old_alloc = problem.previous_allocations.get(seed.seed_id, {})
                for r in problem.resource_types:
                    if r != problem.r_poll:
                        usage[r] += old_alloc.get(r, 0.0)
                old_env = _full_env(problem, old_alloc)
                for demand in seed.poll_demands:
                    rate = (problem.alpha(switch) * demand.weight
                            * max(demand.inv_interval.evaluate(old_env), 0.0))
                    key = demand.subject
                    pollres[key] = max(pollres.get(key, 0.0), rate)
        for r in problem.resource_types:
            if r == problem.r_poll:
                continue
            if usage[r] > ares.get(r, 0.0) + tol * max(1.0, ares.get(r, 0.0)):
                errors.append(
                    f"C4: switch {switch} over capacity on {r}: "
                    f"{usage[r]:.6f} > {ares.get(r, 0.0):.6f}")
        poll_total = sum(pollres.values())
        poll_cap = ares.get(problem.r_poll, 0.0)
        if poll_total > poll_cap + tol * max(1.0, poll_cap):
            errors.append(
                f"C4(poll): switch {switch} polling demand {poll_total:.6f} "
                f"exceeds capacity {poll_cap:.6f}")
    return errors
