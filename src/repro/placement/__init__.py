"""Seed-placement optimization (SIV): model, MILP, and Alg. 1 heuristic."""

from repro.placement.heuristic import HeuristicPlacementSolver, solve_heuristic
from repro.placement.incremental import (
    DEFAULT_FALLBACK_RATIO,
    FULL_RESOLVE_ENV,
    ChurnDelta,
    IncrementalPlacementSolver,
    apply_delta,
    compute_dirty,
    solve_incremental,
)
from repro.placement.instances import TASK_TEMPLATES, generate_problem
from repro.placement.linprog_builder import LinProgram, SolveResult
from repro.placement.milp import MilpPlacementSolver, solve_milp
from repro.placement.model import (
    PlacementProblem,
    PlacementSolution,
    PollDemand,
    SeedSpec,
    TaskSpec,
    compute_objective,
    validate_solution,
)

__all__ = [
    "HeuristicPlacementSolver", "solve_heuristic",
    "DEFAULT_FALLBACK_RATIO", "FULL_RESOLVE_ENV", "ChurnDelta",
    "IncrementalPlacementSolver", "apply_delta", "compute_dirty",
    "solve_incremental",
    "TASK_TEMPLATES", "generate_problem",
    "LinProgram", "SolveResult",
    "MilpPlacementSolver", "solve_milp",
    "PlacementProblem", "PlacementSolution", "PollDemand", "SeedSpec",
    "TaskSpec", "compute_objective", "validate_solution",
]
