"""The CPU-intensive ML task of SVI-A-c.

"The ML task relies on support vector regression using matrix-matrix
multiplications with 1000x1000 matrices.  The Python implementation is
executed via exec(), parameterized by the polled statistics."

Here the SVR predictor is a real numpy computation registered as an
external program on each soil; its CPU cost is charged to the switch CPU
(the 1000x1000 matmul costs are what melt the quad-core Atom in Fig. 6c).
``iterations`` reproduces the Fig. 6d partitioning: 10 iterations per poll
at a 10x coarser accuracy cuts the parallel seed count by 10.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.harvester import Harvester, SeedReport
from repro.core.soil import Soil
from repro.core.task import TaskDefinition

#: Measured-equivalent CPU seconds for one SVR *iteration step* on the
#: switch CPU.  Calibrated so the Fig. 6 crossovers land where the paper
#: measured them: at 1 ms accuracy x1 iteration the quad-core saturates
#: around 50 parallel seeds (6c), while 10 ms x10 iterations scales to
#: ~250 seeds (6d) -- the per-wakeup overhead (ML_EVENT_CPU_S) dominates
#: 6c, amortizing it over 10 iterations is what partitioning buys.
SVR_ITERATION_CPU_S = 8e-6

#: Per-wakeup cost of the ML seed's handler (marshalling polled stats into
#: feature vectors and dispatching exec()).
ML_EVENT_CPU_S = 75e-6

ALMANAC_SOURCE = """
machine MLPredict {
  place all;
  poll pollStats = Poll { .ival = accuracy / res().PCIe, .what = port ANY };
  external long accuracy;
  external long iterations;

  state predicting {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 512) then {
        return min(res.vCPU * 30, res.PCIe / 20);
      }
    }
    when (pollStats as stats) do {
      int it = 0;
      float prediction = 0.0;
      while (it < iterations) {
        prediction = exec("svr_predict", stats);
        it = it + 1;
      }
      send prediction to harvester;
    }
  }
}
"""


class SvrPredictor:
    """Support vector regression over polled port statistics [44].

    A fixed random projection stands in for the trained kernel matrix: the
    computation (1000x1000 matmul chain) is the real thing; the weights
    are synthetic because the paper's traffic traces are not available.
    """

    def __init__(self, dim: int = 1000, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.kernel = rng.standard_normal((dim, dim)) * (1.0 / dim)
        self.weights = rng.standard_normal(dim)
        self.dim = dim

    def predict(self, stats) -> float:
        """One SVR evaluation: embed the stats, push through the kernel."""
        features = np.zeros(self.dim)
        if stats:
            for index, entry in enumerate(stats):
                rate = getattr(entry, "rate_bps", 0.0)
                features[index % self.dim] += rate
            scale = np.abs(features).max()
            if scale > 0:
                features /= scale
        hidden = self.kernel @ features
        return float(self.weights @ np.tanh(hidden))


def register_ml_support(soil: Soil, iterations_cost: float = SVR_ITERATION_CPU_S,
                        dim: int = 1000) -> SvrPredictor:
    """Install the SVR external program on one soil.

    The *real* numpy matmul runs (so predictions are genuine); the CPU
    accounting uses the measured-equivalent cost of the switch CPU, not
    this host's, since benchmark figures are about switch load.
    """
    predictor = SvrPredictor(dim=dim)
    soil.register_external("svr_predict", predictor.predict,
                           cpu_cost_s=iterations_cost)
    return predictor


class PredictionHarvester(Harvester):
    """Collects the per-switch traffic predictions."""

    def __init__(self) -> None:
        super().__init__("ml-harvester")
        self.predictions: List[tuple] = []

    def on_seed_report(self, report: SeedReport) -> None:
        self.predictions.append((report.time, report.switch, report.value))


def make_task(task_id: str = "ml-predict",
              accuracy_ms: float = 1.0,
              iterations: int = 1,
              harvester: Optional[Harvester] = None) -> TaskDefinition:
    """The ML task; Fig. 6c uses (1 ms, 1 iter), Fig. 6d (10 ms, 10 iter)."""
    return TaskDefinition.single_machine(
        task_id=task_id, source=ALMANAC_SOURCE, machine_name="MLPredict",
        externals={"accuracy": int(accuracy_ms), "iterations": int(iterations)},
        harvester=harvester or PredictionHarvester(),
        event_cpu_s=ML_EVENT_CPU_S)
