"""Hierarchical heavy hitter (HHH) detection [24].

Two variants, as in Tab. I:

* ``HHH`` — the *inherited* variant: ``extends HH`` and only overrides the
  reporting state to aggregate detected hitters into /24 prefixes (21 LoC
  of new code in the paper).
* ``HHHFull`` — the standalone variant that tracks per-prefix byte counts
  across levels of the hierarchy itself.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.harvester import Harvester, SeedReport
from repro.core.task import TaskDefinition
from repro.tasks.heavy_hitter import ALMANAC_SOURCE as HH_SOURCE
from repro.tasks.heavy_hitter import DEFAULT_HITTER_ACTION

#: Inherited variant: reuse the HH machine, override only HHdetected.
INHERITED_SOURCE = HH_SOURCE + """
machine HHH extends HH {
  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      // Aggregate hitter ports into coarser groups before reporting:
      // the hierarchical rollup of [24] over the port dimension.
      list groups;
      int i = 0;
      while (i < size(hitters)) {
        int grp = toint(get(hitters, i) / 8);
        if (not contains(groups, grp)) then {
          append(groups, grp);
        }
        i = i + 1;
      }
      send groups to harvester;
      setHitterRules(hitters, hitterAction);
      transit observe;
    }
  }
}
"""

#: Standalone variant: tracks a two-level prefix hierarchy over sources.
FULL_SOURCE = """
machine HHHFull {
  place all;
  probe pkts = Probe { .ival = interval, .what = port ANY };
  external long threshold;
  external float interval;
  list byHost = makeMap();
  list byPrefix = makeMap();

  state collect {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 200) then {
        return res.vCPU * 10;
      }
    }
    when (pkts as samples) do {
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        mapInc(byHost, p.src_ip, p.size);
        mapInc(byPrefix, prefixOf(p.src_ip, 24), p.size);
        i = i + 1;
      }
      list hhh;
      list prefixes = mapKeys(byPrefix);
      int j = 0;
      while (j < size(prefixes)) {
        long pfx = get(prefixes, j);
        if (mapGet(byPrefix, pfx) >= threshold) then {
          append(hhh, ipstr(pfx));
        }
        j = j + 1;
      }
      if (not is_list_empty(hhh)) then {
        send hhh to harvester;
        mapClear(byPrefix);
        mapClear(byHost);
      }
    }
  }

  when (recv long newTh from harvester) do { threshold = newTh; }
}
"""


class HhhHarvester(Harvester):
    """Collects hierarchical heavy hitter reports (groups / prefixes)."""

    def __init__(self) -> None:
        super().__init__("hhh-harvester")
        self.hierarchy_hits: Dict[object, int] = {}

    def on_seed_report(self, report: SeedReport) -> None:
        for group in report.value:
            self.hierarchy_hits[group] = self.hierarchy_hits.get(group, 0) + 1


def make_task(task_id: str = "hierarchical-hh",
              threshold: float = 10_000_000.0,
              accuracy_ms: float = 10.0,
              inherited: bool = True,
              harvester: Optional[Harvester] = None) -> TaskDefinition:
    """The HHH task; ``inherited=True`` uses the ``extends HH`` variant."""
    if harvester is None:
        harvester = HhhHarvester()
    if inherited:
        return TaskDefinition.single_machine(
            task_id=task_id, source=INHERITED_SOURCE, machine_name="HHH",
            externals={"threshold": int(threshold),
                       "accuracy": int(accuracy_ms),
                       "hitterAction": dict(DEFAULT_HITTER_ACTION)},
            harvester=harvester)
    return TaskDefinition.single_machine(
        task_id=task_id, source=FULL_SOURCE, machine_name="HHHFull",
        externals={"threshold": int(threshold),
                   "interval": accuracy_ms / 1000.0},
        harvester=harvester)
