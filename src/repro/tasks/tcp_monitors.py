"""TCP-centric monitors from NetQRE [28] (Tab. I).

* ``NewTcpConn`` — counts newly observed TCP connections per window.
* ``SynFlood`` — SYN-vs-SYNACK imbalance detection with a local SYN
  rate-limit reaction.
* ``PartialTcpFlow`` — connections that began (SYN) but never completed a
  handshake within a window; a signature of stealth scans and floods.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.harvester import Harvester, SeedReport
from repro.core.task import TaskDefinition

NEW_TCP_CONN_SOURCE = """
machine NewTcpConn {
  place all;
  probe pkts = Probe { .ival = interval, .what = proto 6 and tcpFlags 2 };
  external float interval;
  list seen = makeMap();

  state counting {
    util (res) {
      if (res.vCPU >= 0.25 and res.RAM >= 32) then { return 10; }
    }
    when (pkts as samples) do {
      int fresh = 0;
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        long key = p.src_ip * 65536 + p.dst_port;
        if (mapGet(seen, key) == 0) then {
          mapSet(seen, key, 1);
          fresh = fresh + 1;
        }
        i = i + 1;
      }
      if (fresh > 0) then {
        send fresh to harvester;
      }
    }
  }
}
"""

SYN_FLOOD_SOURCE = """
machine SynFlood {
  place all;
  probe synPkts = Probe { .ival = interval, .what = proto 6 and tcpFlags 2 };
  external long synThreshold;  // distinct SYN sources per window
  external long limitRate;
  external float interval;
  list synCount = makeMap();   // victim -> SYNs seen this window
  list ackCount = makeMap();   // victim -> SYNACKs seen this window
  list protecting;

  state observe {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 64) then {
        return min(res.vCPU * 15, res.PCIe / 40);
      }
    }
    when (synPkts as samples) do {
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        if (p.is_synack) then {
          mapInc(ackCount, p.src_ip, 1);
        } else {
          mapInc(synCount, p.dst_ip, 1);
        }
        i = i + 1;
      }
      list victims = mapKeys(synCount);
      int j = 0;
      while (j < size(victims)) {
        long victim = get(victims, j);
        long syns = mapGet(synCount, victim);
        long acks = mapGet(ackCount, victim);
        if (syns >= synThreshold and syns > acks * 3) then {
          if (not contains(protecting, victim)) then {
            append(protecting, victim);
            transit protect;
          }
        }
        j = j + 1;
      }
      mapClear(synCount);
      mapClear(ackCount);
    }
  }

  state protect {
    util (res) { return 150; }
    when (enter) do {
      long victim = get(protecting, size(protecting) - 1);
      // Local reaction: throttle SYNs toward the victim.
      addTCAMRule(makeRule(dstIP ipstr(victim) and tcpFlags 2,
                           makeRateLimitAction(limitRate)));
      send ipstr(victim) to harvester;
      transit observe;
    }
  }

  when (recv string release from harvester) do {
    removeTCAMRule(dstIP release and tcpFlags 2);
  }
}
"""

PARTIAL_TCP_SOURCE = """
machine PartialTcpFlow {
  place all;
  probe pkts = Probe { .ival = interval, .what = proto 6 };
  time window = windowLen;
  external float interval;
  external float windowLen;
  external long partialThreshold;
  list opened = makeMap();     // src -> flows opened (SYN seen)
  list completed = makeMap();  // src -> flows completed (ACK/FIN seen)

  state tracking {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 96) then {
        return min(res.vCPU * 12, res.PCIe / 50);
      }
    }
    when (pkts as samples) do {
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        if (p.is_syn) then {
          mapInc(opened, p.src_ip, 1);
        }
        if (p.is_fin or p.is_synack) then {
          mapInc(completed, p.src_ip, 1);
        }
        i = i + 1;
      }
    }
    when (window) do {
      // End of window: sources with many opens and few completions hold
      // partial flows.
      list suspects;
      list srcs = mapKeys(opened);
      int j = 0;
      while (j < size(srcs)) {
        long src = get(srcs, j);
        long part = mapGet(opened, src) - mapGet(completed, src);
        if (part >= partialThreshold) then {
          append(suspects, ipstr(src));
        }
        j = j + 1;
      }
      if (not is_list_empty(suspects)) then {
        send suspects to harvester;
      }
      mapClear(opened);
      mapClear(completed);
    }
  }
}
"""


class CountingHarvester(Harvester):
    """Accumulates numeric reports (new-connection counts etc.)."""

    def __init__(self, name: str = "counting-harvester") -> None:
        super().__init__(name)
        self.total = 0

    def on_seed_report(self, report: SeedReport) -> None:
        if isinstance(report.value, (int, float)):
            self.total += report.value


class SuspectHarvester(Harvester):
    """Accumulates suspect-host reports (SYN flood, partial flows)."""

    def __init__(self, name: str = "suspect-harvester") -> None:
        super().__init__(name)
        self.suspects: List[str] = []

    def on_seed_report(self, report: SeedReport) -> None:
        value = report.value
        if isinstance(value, list):
            self.suspects.extend(str(v) for v in value)
        else:
            self.suspects.append(str(value))


def make_new_tcp_conn_task(task_id: str = "new-tcp-conn",
                           interval_s: float = 0.01,
                           harvester: Optional[Harvester] = None
                           ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=NEW_TCP_CONN_SOURCE,
        machine_name="NewTcpConn",
        externals={"interval": float(interval_s)},
        harvester=harvester or CountingHarvester())


def make_syn_flood_task(task_id: str = "syn-flood",
                        syn_threshold: int = 50,
                        limit_rate: float = 10_000.0,
                        interval_s: float = 0.01,
                        harvester: Optional[Harvester] = None
                        ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=SYN_FLOOD_SOURCE, machine_name="SynFlood",
        externals={"synThreshold": int(syn_threshold),
                   "limitRate": int(limit_rate),
                   "interval": float(interval_s)},
        harvester=harvester or SuspectHarvester("syn-flood-harvester"))


def make_partial_tcp_task(task_id: str = "partial-tcp-flow",
                          partial_threshold: int = 20,
                          window_s: float = 0.5,
                          interval_s: float = 0.01,
                          harvester: Optional[Harvester] = None
                          ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=PARTIAL_TCP_SOURCE,
        machine_name="PartialTcpFlow",
        externals={"partialThreshold": int(partial_threshold),
                   "windowLen": float(window_s),
                   "interval": float(interval_s)},
        harvester=harvester or SuspectHarvester("partial-tcp-harvester"))
