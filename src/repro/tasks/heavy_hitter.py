"""Heavy hitter (HH) detection — the paper's running example (List. 2).

A seed per switch polls all port statistics; ports whose transmit rate
exceeds a threshold are reported to the harvester and rate-limited locally
(the switch-local *reaction* that makes FARM's 1 ms mitigation possible).
"""

from __future__ import annotations

from typing import Optional

from repro.core.harvester import Harvester, SeedReport
from repro.core.task import TaskDefinition

#: The default reaction applied to detected heavy hitters.
DEFAULT_HITTER_ACTION = {"action": "rate_limit", "rate_bps": 1_000_000.0}

ALMANAC_SOURCE = """
// Heavy hitter detection (List. 2 of the paper, with the auxiliary
// functions getHH / setHitterRules written out).
function list getHH(list stats, long threshold) {
  list result;
  int i = 0;
  while (i < size(stats)) {
    if (get(stats, i).rate_bps >= threshold) then {
      append(result, get(stats, i).port);
    }
    i = i + 1;
  }
  return result;
}

function int setHitterRules(list hitters, action act) {
  // Idempotent under churn: a port already carrying a hitter rule is
  // skipped, so repeated detections never exhaust the TCAM budget.
  int installed = 0;
  int i = 0;
  while (i < size(hitters)) {
    if (not contains(ruled, get(hitters, i))) then {
      addTCAMRule(makeRule(port get(hitters, i), act));
      append(ruled, get(hitters, i));
      installed = installed + 1;
    }
    i = i + 1;
  }
  return installed;
}

machine HH {
  place all;
  poll pollStats = Poll {
    .ival = accuracy / res().PCIe, .what = port ANY
  };
  external long threshold;
  external long accuracy;
  external action hitterAction;
  list hitters;
  list ruled;

  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then {
        return min(res.vCPU, res.PCIe / 500);
      }
    }
    when (pollStats as stats) do {
      hitters = getHH(stats, threshold);
      if (not is_list_empty(hitters)) then {
        transit HHdetected;
      }
    }
  }

  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      send hitters to harvester;
      setHitterRules(hitters, hitterAction);
      transit observe;
    }
  }

  when (recv long newTh from harvester)
  do { threshold = newTh; }
  when (recv action hitAct from harvester)
  do { hitterAction = hitAct; }
}
"""


class HeavyHitterHarvester(Harvester):
    """Collects network-wide HHs and can adapt the threshold at runtime."""

    def __init__(self, threshold: float) -> None:
        super().__init__("hh-harvester")
        self.threshold = threshold
        #: (time, switch, port) of every reported heavy hitter.
        self.detections: list = []

    def on_seed_report(self, report: SeedReport) -> None:
        for port in report.value:
            self.detections.append((report.time, report.switch, port))

    def heavy_ports(self, switch: Optional[int] = None) -> set:
        return {(sw, port) for _t, sw, port in self.detections
                if switch is None or sw == switch}

    def first_detection_time(self) -> Optional[float]:
        return self.detections[0][0] if self.detections else None

    def update_threshold(self, threshold: float) -> int:
        """Push a new threshold to every seed (List. 2's harvester role)."""
        self.threshold = threshold
        return self.send_to_seeds("HH", int(threshold))


NETWORK_WIDE_SOURCE = """
// Network-wide HH detection: the scenario Sonata cannot express (SVII).
// Seeds report per-port rates every window; the harvester sums the same
// logical port across switches and detects aggregates that no single
// switch sees cross the threshold.
machine HHReporter {
  place all;
  poll pollStats = Poll { .ival = accuracy / res().PCIe, .what = port ANY };
  external long accuracy;
  external long floor;

  state reporting {
    util (res) {
      if (res.vCPU >= 0.25 and res.RAM >= 64) then {
        return min(res.vCPU * 5, res.PCIe / 500);
      }
    }
    when (pollStats as stats) do {
      // Pre-filter locally ([DEC]): only ports above the floor are worth
      // the harvester's attention.
      list report;
      int i = 0;
      while (i < size(stats)) {
        if (get(stats, i).rate_bps >= floor) then {
          append(report, [get(stats, i).port, get(stats, i).rate_bps]);
        }
        i = i + 1;
      }
      if (not is_list_empty(report)) then {
        send report to harvester;
      }
    }
  }
}
"""


class NetworkWideHhHarvester(Harvester):
    """Aggregates per-switch port rates into network-wide heavy hitters.

    Each seed reports ``[port, rate]`` pairs; the harvester keeps the
    latest rate per (switch, port) and flags logical ports whose *summed*
    rate across switches crosses the threshold — the global view Sonata's
    unmergeable streams cannot provide (SVII).
    """

    def __init__(self, threshold_bps: float) -> None:
        super().__init__("nw-hh-harvester")
        self.threshold_bps = threshold_bps
        self._rates: dict = {}  # (switch, port) -> latest rate
        self.global_detections: list = []
        self._flagged: set = set()

    def on_seed_report(self, report: SeedReport) -> None:
        for port, rate in report.value:
            self._rates[(report.switch, port)] = rate
        totals: dict = {}
        for (switch, port), rate in self._rates.items():
            totals[port] = totals.get(port, 0.0) + rate
        for port, total in totals.items():
            if total >= self.threshold_bps:
                if port not in self._flagged:
                    self._flagged.add(port)
                    self.global_detections.append(
                        (report.time, port, total))
            else:
                self._flagged.discard(port)

    def global_heavy_ports(self) -> set:
        return set(self._flagged)


def make_network_wide_task(task_id: str = "nw-heavy-hitter",
                           threshold: float = 10e6,
                           report_floor: float = 1e5,
                           accuracy_ms: float = 10.0) -> TaskDefinition:
    """Global HH detection: seeds pre-filter, the harvester merges."""
    return TaskDefinition.single_machine(
        task_id=task_id, source=NETWORK_WIDE_SOURCE,
        machine_name="HHReporter",
        externals={"accuracy": int(accuracy_ms), "floor": int(report_floor)},
        harvester=NetworkWideHhHarvester(threshold))


def make_task(task_id: str = "heavy-hitter",
              threshold: float = 10_000_000.0,
              accuracy_ms: float = 10.0,
              hitter_action: Optional[dict] = None,
              harvester: Optional[Harvester] = None) -> TaskDefinition:
    """Build the HH task.

    ``accuracy_ms`` is the polling accuracy at full PCIe allocation: the
    seed's interval is ``accuracy / PCIe`` with PCIe in KB/s units, so at
    the full 1000-unit allocation ``accuracy=10`` polls every 10 ms.
    """
    if harvester is None:
        harvester = HeavyHitterHarvester(threshold)
    return TaskDefinition.single_machine(
        task_id=task_id,
        source=ALMANAC_SOURCE,
        machine_name="HH",
        externals={
            "threshold": int(threshold),
            # ival = accuracy / PCIe; at the full 1000 KB/s allocation an
            # accuracy of 10 polls every 10 ms (List. 2's 10/res().PCIe).
            "accuracy": int(accuracy_ms),
            "hitterAction": dict(hitter_action or DEFAULT_HITTER_ACTION),
        },
        harvester=harvester,
    )
