"""Infrastructure-health monitors from Tab. I.

* ``LinkFailure`` [23] — a port that carried traffic and went silent for
  consecutive polls is reported as a failed link; the local reaction
  mirrors Everflow-style drain: a QoS rule steers traffic off the port.
* ``TrafficChange`` [25] — the 7-LoC change detector: reports when a
  window's total volume deviates from the previous window by more than a
  factor.
* ``FlowSizeDist`` [26] — periodically ships a flow-size histogram
  estimated from samples.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.harvester import Harvester, SeedReport
from repro.core.task import TaskDefinition

LINK_FAILURE_SOURCE = """
machine LinkFailure {
  place all;
  poll pollStats = Poll { .ival = interval, .what = port ANY };
  external float interval;
  external long silentPolls;  // consecutive zero-rate polls before alarm
  list lastActive = makeMap();  // port -> polls since traffic was seen
  list failed;

  state watching {
    util (res) {
      if (res.vCPU >= 0.25 and res.RAM >= 32) then { return 55; }
    }
    when (pollStats as stats) do {
      int i = 0;
      while (i < size(stats)) {
        long pid = get(stats, i).port;
        if (get(stats, i).rate_bps > 0) then {
          mapSet(lastActive, pid, 0);
          if (contains(failed, pid)) then {
            // Link recovered.
            send concat_lists(["up"], [pid]) to harvester;
            removeAt(failed, pid);
          }
        } else {
          if (mapHas(lastActive, pid)) then {
            long silent = mapInc(lastActive, pid, 1);
            if (silent == silentPolls and not contains(failed, pid)) then {
              append(failed, pid);
              send concat_lists(["down"], [pid]) to harvester;
              // Local reaction: deprioritize the dead port's traffic so
              // reroute converges without drops.
              addTCAMRule(makeRule(port pid, makeQosAction("drain")));
            }
          }
        }
        i = i + 1;
      }
    }
  }
}

function int removeAt(list l, long value) {
  int i = 0;
  while (i < size(l)) {
    if (get(l, i) == value) then {
      remove_at(l, i);
      return 1;
    }
    i = i + 1;
  }
  return 0;
}
"""

TRAFFIC_CHANGE_SOURCE = """
machine TrafficChange {
  place all;
  poll pollStats = Poll { .ival = interval, .what = port ANY };
  external float interval;
  external long factor;
  float previous = 0.0;

  state watching {
    util (res) {
      if (res.vCPU >= 0.25 and res.RAM >= 32) then { return 20; }
    }
    when (pollStats as stats) do {
      float total = 0.0;
      int i = 0;
      while (i < size(stats)) {
        total = total + get(stats, i).rate_bps;
        i = i + 1;
      }
      if (previous > 0 and (total > previous * factor
                            or total * factor < previous)) then {
        send total to harvester;
      }
      previous = total;
    }
  }
}
"""

FLOW_SIZE_DIST_SOURCE = """
machine FlowSizeDist {
  place all;
  probe pkts = Probe { .ival = interval, .what = port ANY };
  time report = reportEvery;
  external float interval;
  external float reportEvery;
  list sizes = makeMap();   // flow key -> sampled bytes

  state sampling {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 128) then {
        return min(res.vCPU * 8, res.PCIe / 60);
      }
    }
    when (pkts as samples) do {
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        long key = p.src_ip * 100000 + p.src_port;
        mapInc(sizes, key, p.size);
        i = i + 1;
      }
    }
    when (report) do {
      // Bucketize into a log-scale histogram [26] and ship it; an idle
      // switch reports nothing at all (local pre-filtering, [DEC]).
      if (mapSize(sizes) > 0) then {
        list histogram = makeMap();
        list flows = mapValues(sizes);
        int j = 0;
        while (j < size(flows)) {
          long bytes = get(flows, j);
          int bucket = 0;
          long edge = 1000;
          while (bytes >= edge and bucket < 10) {
            bucket = bucket + 1;
            edge = edge * 10;
          }
          mapInc(histogram, bucket, 1);
          j = j + 1;
        }
        send mapValues(histogram) to harvester;
        mapClear(sizes);
      }
    }
  }
}
"""


class LinkEventHarvester(Harvester):
    """Tracks link up/down reports across the fleet."""

    def __init__(self) -> None:
        super().__init__("link-harvester")
        self.events: List[tuple] = []

    def on_seed_report(self, report: SeedReport) -> None:
        if isinstance(report.value, list) and len(report.value) == 2:
            kind, port = report.value
            self.events.append((report.time, report.switch, kind, port))

    def down_ports(self) -> set:
        down = set()
        for _t, switch, kind, port in self.events:
            if kind == "down":
                down.add((switch, port))
            else:
                down.discard((switch, port))
        return down


class SeriesHarvester(Harvester):
    """Records a time series of scalar or vector reports."""

    def __init__(self, name: str = "series-harvester") -> None:
        super().__init__(name)

    @property
    def series(self) -> List[tuple]:
        return [(r.time, r.value) for r in self.reports]


def make_link_failure_task(task_id: str = "link-failure",
                           interval_s: float = 0.01, silent_polls: int = 3,
                           harvester: Optional[Harvester] = None
                           ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=LINK_FAILURE_SOURCE,
        machine_name="LinkFailure",
        externals={"interval": float(interval_s),
                   "silentPolls": int(silent_polls)},
        harvester=harvester or LinkEventHarvester())


def make_traffic_change_task(task_id: str = "traffic-change",
                             interval_s: float = 0.1, factor: int = 3,
                             harvester: Optional[Harvester] = None
                             ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=TRAFFIC_CHANGE_SOURCE,
        machine_name="TrafficChange",
        externals={"interval": float(interval_s), "factor": int(factor)},
        harvester=harvester or SeriesHarvester("traffic-change-harvester"))


def make_flow_size_dist_task(task_id: str = "flow-size-dist",
                             interval_s: float = 0.01,
                             report_every_s: float = 1.0,
                             harvester: Optional[Harvester] = None
                             ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=FLOW_SIZE_DIST_SOURCE,
        machine_name="FlowSizeDist",
        externals={"interval": float(interval_s),
                   "reportEvery": float(report_every_s)},
        harvester=harvester or SeriesHarvester("fsd-harvester"))
