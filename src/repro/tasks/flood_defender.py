"""FloodDefender [33] — protecting data & control plane under SDN-aimed DoS.

The largest Tab. I use case (126 LoC seed / 35 harvester in the paper).
An SDN-aimed flood fires table-miss packets at the controller; the defense
runs in four phases, modeled as explicit states:

``normal`` -> (miss rate spikes) -> ``detection`` -> (attack confirmed)
-> ``mitigation`` (protective wildcard rules offload the table-miss path,
per-source filtering drops attackers) -> (load subsides) -> ``recovery``
(rules are torn down in steps) -> ``normal``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.harvester import Harvester, SeedReport
from repro.core.task import TaskDefinition

ALMANAC_SOURCE = """
machine FloodDefender {
  place all;
  probe missPkts = Probe { .ival = interval, .what = proto 6 };
  poll pollStats = Poll { .ival = interval * 4, .what = port ANY };
  external float interval;
  external long missThreshold;     // suspicious new-flow arrivals / window
  external long attackerThreshold; // per-source new flows to call it hostile
  external long calmWindows;       // quiet windows before recovery
  list newFlows = makeMap();       // src -> new flows this window
  list seenFlows = makeMap();      // flow key -> 1 (table-hit emulation)
  list attackers;
  long missCount = 0;
  long quiet = 0;

  state normal {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 256) then {
        return min(res.vCPU * 25, res.PCIe / 20);
      }
    }
    when (missPkts as samples) do {
      missCount = missCount + countMisses(samples, newFlows, seenFlows);
      if (missCount >= missThreshold) then {
        transit detection;
      }
    }
    when (pollStats as stats) do {
      missCount = 0;
      mapClear(newFlows);
    }
  }

  state detection {
    util (res) { return 150; }
    when (enter) do {
      // Confirm: are the misses concentrated on few sources (attack) or
      // spread out (flash crowd)?
      list hostile;
      list srcs = mapKeys(newFlows);
      int i = 0;
      while (i < size(srcs)) {
        long src = get(srcs, i);
        if (mapGet(newFlows, src) >= attackerThreshold) then {
          append(hostile, src);
        }
        i = i + 1;
      }
      if (is_list_empty(hostile)) then {
        // Flash crowd: back to normal, nothing to punish.
        missCount = 0;
        transit normal;
      } else {
        attackers = hostile;
        transit mitigation;
      }
    }
  }

  state mitigation {
    util (res) { return 250; }
    when (enter) do {
      // Protective wildcard rule offloads the table-miss path, then
      // per-attacker drops (FloodDefender's table-miss engineering).
      addTCAMRule(makeRule(proto 6, makeQosAction("offload")));
      int i = 0;
      while (i < size(attackers)) {
        addTCAMRule(makeRule(srcIP ipstr(get(attackers, i)),
                             makeDropAction()));
        send ipstr(get(attackers, i)) to harvester;
        i = i + 1;
      }
      quiet = 0;
    }
    when (pollStats as stats) do {
      missCount = 0;
      mapClear(newFlows);
      quiet = quiet + 1;
      if (quiet >= calmWindows) then {
        transit recovery;
      }
    }
    when (missPkts as samples) do {
      long fresh = countMisses(samples, newFlows, seenFlows);
      if (fresh > 0) then {
        quiet = 0;
      }
    }
  }

  state recovery {
    util (res) { return 80; }
    when (enter) do {
      // Tear down in steps: first the per-attacker drops, then the
      // wildcard offload rule.
      int i = 0;
      while (i < size(attackers)) {
        removeTCAMRule(srcIP ipstr(get(attackers, i)));
        i = i + 1;
      }
      removeTCAMRule(proto 6);
      clear(attackers);
      send "recovered" to harvester;
      missCount = 0;
      transit normal;
    }
  }

  when (recv string cmd from harvester) do {
    // The harvester can force recovery (e.g. operator override).
    if (cmd == "recover") then {
      transit recovery;
    }
  }
}

function long countMisses(list samples, list newFlows, list seenFlows) {
  long misses = 0;
  int i = 0;
  while (i < size(samples)) {
    packet p = get(samples, i);
    long key = p.src_ip * 131072 + p.dst_port * 2 + p.proto;
    if (mapGet(seenFlows, key) == 0) then {
      mapSet(seenFlows, key, 1);
      mapInc(newFlows, p.src_ip, 1);
      misses = misses + 1;
    }
    i = i + 1;
  }
  return misses;
}
"""


class FloodDefenderHarvester(Harvester):
    """Aggregates attacker reports; can force recovery network-wide."""

    def __init__(self) -> None:
        super().__init__("flood-defender-harvester")
        self.attackers: List[str] = []
        self.recoveries: int = 0

    def on_seed_report(self, report: SeedReport) -> None:
        if report.value == "recovered":
            self.recoveries += 1
        else:
            self.attackers.append(str(report.value))

    def force_recovery(self) -> int:
        return self.send_to_seeds("FloodDefender", "recover")


def make_task(task_id: str = "flood-defender",
              miss_threshold: int = 100,
              attacker_threshold: int = 20,
              calm_windows: int = 3,
              interval_s: float = 0.01,
              harvester: Optional[Harvester] = None) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=ALMANAC_SOURCE, machine_name="FloodDefender",
        externals={"missThreshold": int(miss_threshold),
                   "attackerThreshold": int(attacker_threshold),
                   "calmWindows": int(calm_windows),
                   "interval": float(interval_s)},
        harvester=harvester or FloodDefenderHarvester(),
        event_cpu_s=60e-6)
