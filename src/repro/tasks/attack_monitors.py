"""Attack detectors from Tab. I.

* ``Superspreader`` [13] — a source contacting many distinct destinations.
* ``SshBruteForce`` [27] — repeated small connections to port 22.
* ``PortScan`` [29] — one source probing many destination ports.
* ``DnsReflection`` [30] — amplified DNS responses converging on a victim.
* ``Slowloris`` [32] — many long-lived near-idle connections to a server.
* ``EntropyEstim`` [31] — source-address entropy as an anomaly signal.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.harvester import Harvester, SeedReport
from repro.core.task import TaskDefinition
from repro.tasks.tcp_monitors import SuspectHarvester

SUPERSPREADER_SOURCE = """
machine Superspreader {
  place all;
  probe pkts = Probe { .ival = interval, .what = port ANY };
  time window = windowLen;
  external float interval;
  external float windowLen;
  external long fanoutThreshold;
  list contacts = makeMap();   // src -> list of distinct destinations
  list flagged;

  state observing {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 96) then {
        return min(res.vCPU * 15, res.PCIe / 40);
      }
    }
    when (pkts as samples) do {
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        list dsts = mapGet(contacts, p.src_ip);
        if (dsts == 0) then {
          list fresh;
          mapSet(contacts, p.src_ip, fresh);
          dsts = fresh;
        }
        if (not contains(dsts, p.dst_ip)) then {
          append(dsts, p.dst_ip);
          if (size(dsts) >= fanoutThreshold
              and not contains(flagged, p.src_ip)) then {
            append(flagged, p.src_ip);
            send ipstr(p.src_ip) to harvester;
            // Local reaction: cap the spreader's connection budget.
            addTCAMRule(makeRule(srcIP ipstr(p.src_ip),
                                 makeRateLimitAction(10000)));
          }
        }
        i = i + 1;
      }
    }
    when (window) do {
      mapClear(contacts);
    }
  }
}
"""

SSH_BRUTE_FORCE_SOURCE = """
machine SshBruteForce {
  place all;
  probe pkts = Probe { .ival = interval, .what = proto 6 and dstPort 22 };
  time window = windowLen;
  external float interval;
  external float windowLen;
  external long attemptThreshold;
  list attempts = makeMap();  // src -> attempts this window
  list blocked;

  state watching {
    util (res) {
      if (res.vCPU >= 0.25 and res.RAM >= 48) then { return 30; }
    }
    when (pkts as samples) do {
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        long count = mapInc(attempts, p.src_ip, 1);
        if (count >= attemptThreshold
            and not contains(blocked, p.src_ip)) then {
          append(blocked, p.src_ip);
          send ipstr(p.src_ip) to harvester;
          addTCAMRule(makeRule(srcIP ipstr(p.src_ip) and dstPort 22,
                               makeDropAction()));
        }
        i = i + 1;
      }
    }
    when (window) do {
      mapClear(attempts);
    }
  }
}
"""

PORT_SCAN_SOURCE = """
machine PortScan {
  place all;
  probe pkts = Probe { .ival = interval, .what = proto 6 and tcpFlags 2 };
  time window = windowLen;
  external float interval;
  external float windowLen;
  external long portThreshold;
  list probed = makeMap();   // src -> distinct destination ports
  list flagged;

  state scanning {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 64) then {
        return min(res.vCPU * 12, res.PCIe / 50);
      }
    }
    when (pkts as samples) do {
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        list ports = mapGet(probed, p.src_ip);
        if (ports == 0) then {
          list fresh;
          mapSet(probed, p.src_ip, fresh);
          ports = fresh;
        }
        if (not contains(ports, p.dst_port)) then {
          append(ports, p.dst_port);
        }
        i = i + 1;
      }
      // Sequential-hypothesis-style decision at the end of each batch
      // [29]: flag sources probing too many distinct ports.
      list srcs = mapKeys(probed);
      int j = 0;
      while (j < size(srcs)) {
        long src = get(srcs, j);
        if (size(mapGet(probed, src)) >= portThreshold
            and not contains(flagged, src)) then {
          append(flagged, src);
          transit react;
        }
        j = j + 1;
      }
    }
    when (window) do {
      mapClear(probed);
    }
  }

  state react {
    util (res) { return 120; }
    when (enter) do {
      long scanner = get(flagged, size(flagged) - 1);
      send ipstr(scanner) to harvester;
      addTCAMRule(makeRule(srcIP ipstr(scanner), makeDropAction()));
      transit scanning;
    }
  }
}
"""

DNS_REFLECTION_SOURCE = """
machine DnsReflection {
  place all;
  probe pkts = Probe { .ival = interval, .what = proto 17 and srcPort 53 };
  time window = windowLen;
  external float interval;
  external float windowLen;
  external long volumeThreshold;   // reflected bytes per victim per window
  external long amplificationSize; // responses above this are suspicious
  list reflected = makeMap();      // victim -> suspicious response bytes
  list shielded;

  state observing {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 96) then {
        return min(res.vCPU * 18, res.PCIe / 35);
      }
    }
    when (pkts as samples) do {
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        if (p.size >= amplificationSize) then {
          long volume = mapInc(reflected, p.dst_ip, p.size);
          if (volume >= volumeThreshold
              and not contains(shielded, p.dst_ip)) then {
            append(shielded, p.dst_ip);
            send ipstr(p.dst_ip) to harvester;
            // Drop oversized DNS responses toward the victim.
            addTCAMRule(makeRule(
              dstIP ipstr(p.dst_ip) and proto 17 and srcPort 53,
              makeDropAction()));
          }
        }
        i = i + 1;
      }
    }
    when (window) do {
      mapClear(reflected);
    }
  }
}
"""

SLOWLORIS_SOURCE = """
machine Slowloris {
  place all;
  probe pkts = Probe { .ival = interval, .what = proto 6 and dstPort 80 };
  time window = windowLen;
  external float interval;
  external float windowLen;
  external long connThreshold;   // many connections ...
  external long avgSizeCap;      // ... of tiny header-dribble packets
  list conns = makeMap();        // server -> distinct client list
  list volume = makeMap();       // server -> sampled bytes this window
  list count = makeMap();        // server -> samples this window
  list protected;

  state observing {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 64) then { return 25; }
    }
    when (pkts as samples) do {
      // Accumulate only; the verdict happens at window end so a freshly
      // reset volume counter can never fake the "idle crowd" signature.
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        list clients = mapGet(conns, p.dst_ip);
        if (clients == 0) then {
          list fresh;
          mapSet(conns, p.dst_ip, fresh);
          clients = fresh;
        }
        if (not contains(clients, p.src_ip)) then {
          append(clients, p.src_ip);
        }
        mapInc(volume, p.dst_ip, p.size);
        mapInc(count, p.dst_ip, 1);
        i = i + 1;
      }
    }
    when (window) do {
      list servers = mapKeys(conns);
      int j = 0;
      while (j < size(servers)) {
        long server = get(servers, j);
        float avgSize = mapGet(volume, server)
                        / max(1, mapGet(count, server));
        if (size(mapGet(conns, server)) >= connThreshold
            and avgSize <= avgSizeCap
            and not contains(protected, server)) then {
          // Slowloris signature: a crowd of connections dribbling tiny
          // keep-alive packets instead of real payloads.
          append(protected, server);
          send ipstr(server) to harvester;
          addTCAMRule(makeRule(dstIP ipstr(server) and dstPort 80,
                               makeRateLimitAction(10000)));
        }
        j = j + 1;
      }
      mapClear(conns);
      mapClear(volume);
      mapClear(count);
    }
  }
}
"""

ENTROPY_SOURCE = """
machine EntropyEstim {
  place all;
  probe pkts = Probe { .ival = interval, .what = port ANY };
  time window = windowLen;
  external float interval;
  external float windowLen;
  external float lowWater;   // alarm when entropy drops below this
  list sampleSrcs;
  float lastEntropy = 0.0;

  state estimating {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 64) then {
        return min(res.vCPU * 10, res.PCIe / 60);
      }
    }
    when (pkts as samples) do {
      int i = 0;
      while (i < size(samples)) {
        append(sampleSrcs, get(samples, i).src_ip);
        i = i + 1;
      }
    }
    when (window) do {
      if (size(sampleSrcs) > 0) then {
        lastEntropy = entropy(sampleSrcs);
        send lastEntropy to harvester;
        if (lastEntropy < lowWater) then {
          transit anomaly;
        }
        clear(sampleSrcs);
      }
    }
  }

  state anomaly {
    util (res) { return 90; }
    when (enter) do {
      send "entropy-anomaly" to harvester;
      transit estimating;
    }
  }
}
"""


class EntropyHarvester(Harvester):
    """Tracks the entropy time series and anomaly alarms."""

    def __init__(self) -> None:
        super().__init__("entropy-harvester")
        self.entropies: List[float] = []
        self.anomalies: int = 0

    def on_seed_report(self, report: SeedReport) -> None:
        if isinstance(report.value, float):
            self.entropies.append(report.value)
        elif report.value == "entropy-anomaly":
            self.anomalies += 1


def make_superspreader_task(task_id: str = "superspreader",
                            fanout_threshold: int = 50,
                            interval_s: float = 0.01,
                            window_s: float = 1.0,
                            harvester: Optional[Harvester] = None
                            ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=SUPERSPREADER_SOURCE,
        machine_name="Superspreader",
        externals={"fanoutThreshold": int(fanout_threshold),
                   "interval": float(interval_s),
                   "windowLen": float(window_s)},
        harvester=harvester or SuspectHarvester("spreader-harvester"))


def make_ssh_brute_force_task(task_id: str = "ssh-brute-force",
                              attempt_threshold: int = 10,
                              interval_s: float = 0.05,
                              window_s: float = 5.0,
                              harvester: Optional[Harvester] = None
                              ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=SSH_BRUTE_FORCE_SOURCE,
        machine_name="SshBruteForce",
        externals={"attemptThreshold": int(attempt_threshold),
                   "interval": float(interval_s),
                   "windowLen": float(window_s)},
        harvester=harvester or SuspectHarvester("ssh-harvester"))


def make_port_scan_task(task_id: str = "port-scan",
                        port_threshold: int = 20,
                        interval_s: float = 0.01,
                        window_s: float = 2.0,
                        harvester: Optional[Harvester] = None
                        ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=PORT_SCAN_SOURCE, machine_name="PortScan",
        externals={"portThreshold": int(port_threshold),
                   "interval": float(interval_s),
                   "windowLen": float(window_s)},
        harvester=harvester or SuspectHarvester("portscan-harvester"))


def make_dns_reflection_task(task_id: str = "dns-reflection",
                             volume_threshold: float = 50_000.0,
                             amplification_size: int = 1500,
                             interval_s: float = 0.01,
                             window_s: float = 1.0,
                             harvester: Optional[Harvester] = None
                             ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=DNS_REFLECTION_SOURCE,
        machine_name="DnsReflection",
        externals={"volumeThreshold": int(volume_threshold),
                   "amplificationSize": int(amplification_size),
                   "interval": float(interval_s),
                   "windowLen": float(window_s)},
        harvester=harvester or SuspectHarvester("dns-harvester"))


def make_slowloris_task(task_id: str = "slowloris",
                        conn_threshold: int = 50,
                        avg_size_cap: float = 300.0,
                        interval_s: float = 0.05,
                        window_s: float = 0.25,
                        harvester: Optional[Harvester] = None
                        ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=SLOWLORIS_SOURCE, machine_name="Slowloris",
        externals={"connThreshold": int(conn_threshold),
                   "avgSizeCap": int(avg_size_cap),
                   "interval": float(interval_s),
                   "windowLen": float(window_s)},
        harvester=harvester or SuspectHarvester("slowloris-harvester"))


def make_entropy_task(task_id: str = "entropy-estimation",
                      low_water: float = 1.0,
                      interval_s: float = 0.01,
                      window_s: float = 0.5,
                      harvester: Optional[Harvester] = None
                      ) -> TaskDefinition:
    return TaskDefinition.single_machine(
        task_id=task_id, source=ENTROPY_SOURCE, machine_name="EntropyEstim",
        externals={"lowWater": float(low_water),
                   "interval": float(interval_s),
                   "windowLen": float(window_s)},
        harvester=harvester or EntropyHarvester())
