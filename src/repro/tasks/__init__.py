"""The Tab. I task library: 16 M&M use cases + the SVI ML task.

Every entry in :data:`TASK_REGISTRY` maps a use-case name to a factory
returning a ready-to-submit :class:`~repro.core.task.TaskDefinition`.
``ALMANAC_SOURCES`` exposes the raw Almanac programs (Tab. I's LoC counts
are measured over these).
"""

from repro.tasks import attack_monitors, infrastructure_monitors
from repro.tasks.attack_monitors import (
    DNS_REFLECTION_SOURCE,
    ENTROPY_SOURCE,
    PORT_SCAN_SOURCE,
    SLOWLORIS_SOURCE,
    SSH_BRUTE_FORCE_SOURCE,
    SUPERSPREADER_SOURCE,
    make_dns_reflection_task,
    make_entropy_task,
    make_port_scan_task,
    make_slowloris_task,
    make_ssh_brute_force_task,
    make_superspreader_task,
)
from repro.tasks.ddos import ALMANAC_SOURCE as DDOS_SOURCE
from repro.tasks.ddos import DdosHarvester, make_task as make_ddos_task
from repro.tasks.flood_defender import ALMANAC_SOURCE as FLOOD_DEFENDER_SOURCE
from repro.tasks.flood_defender import (
    FloodDefenderHarvester,
    make_task as make_flood_defender_task,
)
from repro.tasks.heavy_hitter import ALMANAC_SOURCE as HEAVY_HITTER_SOURCE
from repro.tasks.heavy_hitter import (
    HeavyHitterHarvester,
    make_task as make_heavy_hitter_task,
)
from repro.tasks.hierarchical_hh import (
    FULL_SOURCE as HHH_FULL_SOURCE,
    INHERITED_SOURCE as HHH_INHERITED_SOURCE,
    HhhHarvester,
    make_task as make_hierarchical_hh_task,
)
from repro.tasks.infrastructure_monitors import (
    FLOW_SIZE_DIST_SOURCE,
    LINK_FAILURE_SOURCE,
    TRAFFIC_CHANGE_SOURCE,
    LinkEventHarvester,
    SeriesHarvester,
    make_flow_size_dist_task,
    make_link_failure_task,
    make_traffic_change_task,
)
from repro.tasks.ml_task import ALMANAC_SOURCE as ML_SOURCE
from repro.tasks.ml_task import (
    PredictionHarvester,
    SvrPredictor,
    make_task as make_ml_task,
    register_ml_support,
)
from repro.tasks.tcp_monitors import (
    NEW_TCP_CONN_SOURCE,
    PARTIAL_TCP_SOURCE,
    SYN_FLOOD_SOURCE,
    CountingHarvester,
    SuspectHarvester,
    make_new_tcp_conn_task,
    make_partial_tcp_task,
    make_syn_flood_task,
)

#: name -> (source text, main machine name) — the Tab. I inventory.
ALMANAC_SOURCES = {
    "heavy_hitter": (HEAVY_HITTER_SOURCE, "HH"),
    "hierarchical_hh_inherited": (HHH_INHERITED_SOURCE, "HHH"),
    "hierarchical_hh": (HHH_FULL_SOURCE, "HHHFull"),
    "ddos": (DDOS_SOURCE, "DDoS"),
    "new_tcp_conn": (NEW_TCP_CONN_SOURCE, "NewTcpConn"),
    "tcp_syn_flood": (SYN_FLOOD_SOURCE, "SynFlood"),
    "partial_tcp_flow": (PARTIAL_TCP_SOURCE, "PartialTcpFlow"),
    "slowloris": (SLOWLORIS_SOURCE, "Slowloris"),
    "link_failure": (LINK_FAILURE_SOURCE, "LinkFailure"),
    "traffic_change": (TRAFFIC_CHANGE_SOURCE, "TrafficChange"),
    "flow_size_distribution": (FLOW_SIZE_DIST_SOURCE, "FlowSizeDist"),
    "superspreader": (SUPERSPREADER_SOURCE, "Superspreader"),
    "ssh_brute_force": (SSH_BRUTE_FORCE_SOURCE, "SshBruteForce"),
    "port_scan": (PORT_SCAN_SOURCE, "PortScan"),
    "dns_reflection": (DNS_REFLECTION_SOURCE, "DnsReflection"),
    "entropy_estimation": (ENTROPY_SOURCE, "EntropyEstim"),
    "flood_defender": (FLOOD_DEFENDER_SOURCE, "FloodDefender"),
    "ml_predict": (ML_SOURCE, "MLPredict"),
}

#: name -> zero-arg factory producing a TaskDefinition with defaults.
TASK_REGISTRY = {
    "heavy_hitter": make_heavy_hitter_task,
    "hierarchical_hh": make_hierarchical_hh_task,
    "ddos": make_ddos_task,
    "new_tcp_conn": make_new_tcp_conn_task,
    "tcp_syn_flood": make_syn_flood_task,
    "partial_tcp_flow": make_partial_tcp_task,
    "slowloris": make_slowloris_task,
    "link_failure": make_link_failure_task,
    "traffic_change": make_traffic_change_task,
    "flow_size_distribution": make_flow_size_dist_task,
    "superspreader": make_superspreader_task,
    "ssh_brute_force": make_ssh_brute_force_task,
    "port_scan": make_port_scan_task,
    "dns_reflection": make_dns_reflection_task,
    "entropy_estimation": make_entropy_task,
    "flood_defender": make_flood_defender_task,
    "ml_predict": make_ml_task,
}

__all__ = [
    "ALMANAC_SOURCES", "TASK_REGISTRY",
    "make_heavy_hitter_task", "make_hierarchical_hh_task", "make_ddos_task",
    "make_new_tcp_conn_task", "make_syn_flood_task", "make_partial_tcp_task",
    "make_slowloris_task", "make_link_failure_task",
    "make_traffic_change_task", "make_flow_size_dist_task",
    "make_superspreader_task", "make_ssh_brute_force_task",
    "make_port_scan_task", "make_dns_reflection_task", "make_entropy_task",
    "make_flood_defender_task", "make_ml_task", "register_ml_support",
    "HeavyHitterHarvester", "HhhHarvester", "DdosHarvester",
    "FloodDefenderHarvester", "PredictionHarvester", "SvrPredictor",
    "CountingHarvester", "SuspectHarvester", "SeriesHarvester",
    "LinkEventHarvester",
]
