"""DDoS detection and mitigation [10].

Seeds watch per-victim inbound rate via packet probing; a victim whose
aggregate rate crosses the threshold moves the seed into a ``mitigating``
state that installs a rate-limit rule *locally* — the quench-at-the-switch
reaction the paper's introduction motivates — and informs the harvester,
which can escalate to a network-wide drop.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.harvester import Harvester, SeedReport
from repro.core.task import TaskDefinition

ALMANAC_SOURCE = """
machine DDoS {
  place all;
  probe pkts = Probe { .ival = interval, .what = port ANY };
  external long rateThreshold;    // bytes per window per victim
  external long sourceThreshold;  // distinct sources per victim
  external long quenchRate;       // rate limit applied to a victim's flow
  external float interval;
  list volume = makeMap();        // victim -> bytes this window
  list sources = makeMap();       // victim -> distinct-source list
  list mitigated;

  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 256) then {
        return min(res.vCPU * 20, res.PCIe / 25);
      }
    }
    when (pkts as samples) do {
      int i = 0;
      while (i < size(samples)) {
        packet p = get(samples, i);
        mapInc(volume, p.dst_ip, p.size);
        list seen = mapGet(sources, p.dst_ip);
        if (seen == 0) then {
          list fresh;
          mapSet(sources, p.dst_ip, fresh);
          seen = fresh;
        }
        if (not contains(seen, p.src_ip)) then {
          append(seen, p.src_ip);
        }
        i = i + 1;
      }
      list victims = mapKeys(volume);
      int j = 0;
      while (j < size(victims)) {
        long victim = get(victims, j);
        if (mapGet(volume, victim) >= rateThreshold
            and size(mapGet(sources, victim)) >= sourceThreshold) then {
          if (not contains(mitigated, victim)) then {
            append(mitigated, victim);
            transit mitigating;
          }
        }
        j = j + 1;
      }
      mapClear(volume);
      mapClear(sources);
    }
  }

  state mitigating {
    util (res) { return 200; }
    when (enter) do {
      // Local reaction: rate-limit traffic to the newest victim, then
      // tell the harvester so it can coordinate a network-wide response.
      long victim = get(mitigated, size(mitigated) - 1);
      addTCAMRule(makeRule(dstIP ipstr(victim),
                           makeRateLimitAction(quenchRate)));
      send ipstr(victim) to harvester;
      transit observe;
    }
  }

  when (recv string unblock from harvester) do {
    // Harvester lifts mitigation for a victim once the attack subsides.
    removeTCAMRule(dstIP unblock);
  }
}
"""


class DdosHarvester(Harvester):
    """Tracks victims under attack across the whole network."""

    def __init__(self) -> None:
        super().__init__("ddos-harvester")
        self.victims: Set[str] = set()

    def on_seed_report(self, report: SeedReport) -> None:
        self.victims.add(str(report.value))

    def lift_mitigation(self, victim: str) -> int:
        """Tell every seed the attack on ``victim`` is over."""
        self.victims.discard(victim)
        return self.send_to_seeds("DDoS", victim)


def make_task(task_id: str = "ddos",
              rate_threshold: float = 100_000.0,
              source_threshold: int = 10,
              interval_s: float = 0.01,
              harvester: Optional[Harvester] = None) -> TaskDefinition:
    if harvester is None:
        harvester = DdosHarvester()
    return TaskDefinition.single_machine(
        task_id=task_id, source=ALMANAC_SOURCE, machine_name="DDoS",
        externals={"rateThreshold": int(rate_threshold),
                   "sourceThreshold": int(source_threshold),
                   "quenchRate": 100_000,
                   "interval": float(interval_s)},
        harvester=harvester, event_cpu_s=40e-6)
