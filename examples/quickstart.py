#!/usr/bin/env python3
"""Quickstart: detect and mitigate heavy hitters with FARM in ~30 lines.

Builds an emulated spine-leaf data center, submits the paper's heavy
hitter task (List. 2), injects traffic where two ports go heavy, and
shows (a) the harvester learning about them within milliseconds and
(b) the switch-local rate-limit reaction taking effect with no collector
round trip.

Run:  python examples/quickstart.py
"""

from repro.core.deployment import FarmDeployment
from repro.net.topology import spine_leaf
from repro.net.traffic import HeavyHitterWorkload
from repro.tasks import make_heavy_hitter_task


def main() -> None:
    # 1. An emulated DC: 2 spines, 4 leaves, 4 hosts per leaf.
    farm = FarmDeployment(topology=spine_leaf(2, 4, 4))

    # 2. Submit the HH task: the seeder compiles the Almanac program,
    #    optimizes placement (one seed per switch), and deploys.
    task = make_heavy_hitter_task(threshold=10e6, accuracy_ms=1)
    farm.submit(task)
    farm.settle()
    print(f"deployed {farm.seeder.deployed_seed_count()} seeds on "
          f"{len(farm.topology.switch_ids)} switches")

    # 3. Traffic on one leaf: 20 ports, 10% of them heavy (100 MB/s).
    leaf = farm.topology.leaf_ids[0]
    workload = HeavyHitterWorkload(num_ports=20, hh_ratio=0.1,
                                   hh_rate_bps=100e6,
                                   churn_interval=None, seed=1)
    onset = farm.sim.now
    farm.start_workload(workload, leaf)

    # 4. Let the simulation run for one second of DC time.
    farm.run(until=onset + 1.0)

    # 5. What happened?
    harvester = task.harvester
    latency = harvester.first_detection_time() - onset
    print(f"first detection after {latency * 1000:.2f} ms "
          f"(paper's Tab. 4: ~1 ms)")
    print(f"heavy ports reported: "
          f"{sorted(p for sw, p in harvester.heavy_ports() if sw == leaf)}")
    print(f"ground truth:         {sorted(workload.true_heavy_ports())}")

    # 6. The *local reaction*: seeds installed rate limits on the switch
    #    itself; the elephants are already squeezed to 1 MB/s.
    switch = farm.fleet.get(leaf)
    print(f"TCAM monitoring rules installed: "
          f"{switch.tcam.used('monitoring')}")
    for port in sorted(workload.true_heavy_ports()):
        stats = switch.asic.read_port_stats(port)
        print(f"  port {port}: now flowing at "
              f"{stats.rate_bps / 1e6:.1f} MB/s (was 100.0)")

    # 7. The harvester can re-tune the whole fleet at runtime.
    harvester.update_threshold(5e6)
    print("threshold lowered to 5 MB/s network-wide, live")


if __name__ == "__main__":
    main()
