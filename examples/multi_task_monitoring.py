#!/usr/bin/env python3
"""Running a monitoring *portfolio*: many tasks side by side.

Deploys five Tab. I tasks on the same fleet, drives mixed traffic with an
embedded attack, and shows the cross-task machinery: shared polling
(aggregation), the placement optimizer keeping every switch within
budget, and each task reporting through its own harvester.

Run:  python examples/multi_task_monitoring.py
"""

from repro.core.deployment import FarmDeployment
from repro.net.topology import spine_leaf
from repro.net.traffic import (
    HeavyHitterWorkload,
    PortScanWorkload,
    SynFloodWorkload,
)
from repro.tasks import (
    make_entropy_task,
    make_heavy_hitter_task,
    make_port_scan_task,
    make_syn_flood_task,
    make_traffic_change_task,
)


def main() -> None:
    farm = FarmDeployment(topology=spine_leaf(2, 3, 2))
    tasks = [
        make_heavy_hitter_task(threshold=10e6, accuracy_ms=10),
        make_syn_flood_task(syn_threshold=30),
        make_port_scan_task(port_threshold=15),
        make_traffic_change_task(interval_s=0.1),
        make_entropy_task(interval_s=0.02, window_s=0.5),
    ]
    for task in tasks:
        farm.submit(task)
    farm.settle()
    print(f"{len(tasks)} tasks -> {farm.seeder.deployed_seed_count()} seeds "
          f"across {len(farm.topology.switch_ids)} switches")
    print(f"placed tasks: {sorted(farm.seeder.last_solution.placed_tasks)}")

    # Mixed traffic: normal HH churn + a SYN flood + a port scan.
    leaf_a, leaf_b, leaf_c = farm.topology.leaf_ids
    farm.start_workload(
        HeavyHitterWorkload(num_ports=30, hh_ratio=0.1, hh_rate_bps=100e6,
                            churn_interval=2.0, seed=1), leaf_a)
    farm.start_workload(
        SynFloodWorkload(syn_rate_pps=20000, num_sources=64), leaf_b)
    farm.start_workload(
        PortScanWorkload(num_ports_scanned=40), leaf_c)

    t0 = farm.sim.now
    farm.run(until=t0 + 3.0)

    hh, syn, scan, change, entropy = tasks
    print("\nwhat each task saw in 3 seconds of DC time:")
    print(f"  heavy-hitter : {len(hh.harvester.detections)} reports, "
          f"ports {sorted({p for _s, p in hh.harvester.heavy_ports()})}")
    print(f"  syn-flood    : victims {sorted(set(syn.harvester.suspects))}")
    print(f"  port-scan    : scanners {sorted(set(scan.harvester.suspects))}")
    print(f"  traffic-chng : {len(change.harvester.reports)} change alerts")
    if entropy.harvester.entropies:
        print(f"  entropy      : {len(entropy.harvester.entropies)} samples, "
              f"last {entropy.harvester.entropies[-1]:.2f} bits")

    print("\ncross-task efficiency (the [OPT] story):")
    for leaf in farm.topology.leaf_ids:
        soil = farm.soil(leaf)
        total = soil.polls_issued + soil.polls_served_from_cache
        if total:
            saved = 100.0 * soil.polls_served_from_cache / total
            print(f"  switch {leaf}: {soil.num_seeds} seeds, "
                  f"{total} poll requests, {saved:.0f}% served from the "
                  f"soil's aggregation cache")
        switch = farm.fleet.get(leaf)
        print(f"            CPU {switch.cpu.mean_load_percent():.1f}%, "
              f"PCIe demand {switch.pcie.oversubscription * 100:.0f}% "
              f"of capacity")


if __name__ == "__main__":
    main()
