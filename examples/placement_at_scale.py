#!/usr/bin/env python3
"""Global seed placement at data-center scale (SIV / Fig. 7).

Generates randomized M&M workloads on a heterogeneous fleet and compares
FARM's heuristic (Alg. 1) against the exact MILP at two timeouts, then
runs the heuristic alone at the paper's headline scale (10 200 seeds on
1040 switches) to show it stays practical.

Run:  python examples/placement_at_scale.py [--full-scale]
"""

import sys

from repro.eval.reporting import format_table
from repro.placement import (
    generate_problem,
    solve_heuristic,
    solve_milp,
    validate_solution,
)


def head_to_head() -> None:
    rows = []
    for num_seeds, num_switches in ((60, 12), (120, 20), (240, 40)):
        problem = generate_problem(num_seeds, num_switches, num_tasks=8,
                                   seed=1, previous_fraction=0.3)
        heuristic = solve_heuristic(problem)
        milp_fast = solve_milp(problem, time_limit_s=1.0)
        milp_slow = solve_milp(problem, time_limit_s=30.0)
        assert validate_solution(problem, heuristic) == []
        for name, solution in (("FARM heuristic", heuristic),
                               ("MILP (1 s)", milp_fast),
                               ("MILP (30 s)", milp_slow)):
            rows.append((num_seeds, name, f"{solution.objective:.0f}",
                         f"{solution.runtime_s:.2f}s",
                         len(solution.placement),
                         len(solution.migrated_seeds(problem))))
    print(format_table(
        ["seeds", "solver", "utility", "runtime", "placed", "migrated"],
        rows))


def full_scale() -> None:
    print("\nfull scale: 10200 seeds x 1040 switches (paper's Fig. 7 "
          "right edge) ...")
    problem = generate_problem(10200, 1040, num_tasks=10, seed=0)
    solution = solve_heuristic(problem)
    errors = validate_solution(problem, solution)
    print(f"  utility   : {solution.objective:.0f}")
    print(f"  placed    : {len(solution.placement)} seeds "
          f"({len(solution.placed_tasks)} tasks)")
    print(f"  runtime   : {solution.runtime_s:.1f} s")
    print(f"  feasible  : {'yes' if not errors else errors[:2]}")


def main() -> None:
    head_to_head()
    if "--full-scale" in sys.argv:
        full_scale()
    else:
        print("\n(pass --full-scale for the 10200-seed/1040-switch run)")


if __name__ == "__main__":
    main()
