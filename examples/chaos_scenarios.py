#!/usr/bin/env python3
"""Chaos scenarios: monitoring through an unreliable control plane.

The control bus in a real data center loses, duplicates, and delays
messages, and sometimes a whole rack drops off the management network.
This example scripts both kinds of trouble against a running FARM
deployment and shows the two defenses working together:

* the **reliable command channel** (acks + seeded-backoff retries +
  dedup) absorbs uniform message loss — every deploy lands eventually;
* the **suspected -> failed grace period** in the fault-tolerance
  manager keeps a lossy-but-alive switch in service, while a genuine
  5-second partition still triggers exactly one checkpointed failover
  and a clean recovery when the partition heals.

Everything is seeded: rerunning prints identical numbers.

Run:  python examples/chaos_scenarios.py
"""

from repro.core import FarmDeployment, FaultToleranceManager
from repro.core.task import TaskDefinition
from repro.net.topology import spine_leaf

SOURCE = """
machine Sentinel {
  place any;
  time tick = 0.05;
  long beats = 0;
  state watching {
    util (res) { if (res.vCPU >= 0.1) then { return 10; } }
    when (tick) do { beats = beats + 1; }
  }
}
"""


def sentinel_beats(farm, seed):
    deployment = farm.seeder.soils[seed.switch].deployments[seed.seed_id]
    return deployment.instance.machine_scope.vars["beats"]


def main() -> None:
    farm = FarmDeployment(topology=spine_leaf(1, 2, 1))
    chaos = farm.enable_chaos(seed=7)

    # -- scenario 1: deploy through 20% uniform control-message loss ----
    chaos.lossy(0.2)
    print("[t=0s] 20% of all control messages are being dropped")
    task = TaskDefinition.single_machine(
        task_id="sentinel", source=SOURCE, machine_name="Sentinel")
    farm.submit(task)
    farm.run(until=1.0)
    seed = farm.seeder.tasks["sentinel"].seeds[0]
    retries = (farm.seeder.channel.retransmissions
               + sum(s.channel.retransmissions
                     for s in farm.seeder.soils.values()))
    print(f"[t=1s] sentinel deployed on switch {seed.switch} anyway: "
          f"{chaos.messages_dropped} messages dropped so far, "
          f"{retries} retransmissions, "
          f"{farm.seeder.lost_commands} commands lost for good")

    # -- scenario 2: lossy-but-alive switches are not failed over -------
    manager = FaultToleranceManager(farm.seeder,
                                    heartbeat_interval_s=0.2,
                                    miss_limit=3,
                                    checkpoint_interval_s=0.2)
    farm.run(until=5.0)
    print(f"[t=5s] four seconds of lossy heartbeats: "
          f"failovers={manager.failovers_performed}, "
          f"suspicions raised={manager.suspicions_raised} "
          f"(cleared={manager.suspicions_cleared}) — nobody failed over")

    # -- scenario 3: partition the sentinel's rack for 5 s at t=10 s ----
    victim = seed.switch
    chaos.partition_switch(victim, at=10.0, duration=5.0)
    print(f"[t=5s] scripted: switch {victim} will be partitioned "
          f"from t=10s to t=15s")
    farm.run(until=14.0)
    print(f"[t=14s] partition detected and failed over "
          f"(failovers={manager.failovers_performed}): sentinel resumed "
          f"on switch {seed.switch} from its checkpoint with "
          f"{sentinel_beats(farm, seed)} beats retained")
    farm.run(until=20.0)
    copies = [sid for sid, soil in farm.seeder.soils.items()
              if seed.seed_id in soil.deployments]
    print(f"[t=20s] partition healed: switch {victim} recovered "
          f"(recoveries={manager.recoveries_performed}), the stale "
          f"split-brain copy was swept — live copies on {copies}")
    print(f"        final chaos tally: {chaos.stats()}")


if __name__ == "__main__":
    main()
