#!/usr/bin/env python3
"""Fault-tolerant monitoring: surviving a switch crash.

The fault-tolerance extension (the paper's SVIII future work) adds
heartbeats, periodic seed checkpointing, and checkpointed failover.  This
example crashes a leaf switch mid-run and shows the displaced seed
resuming *with its accumulated state* on a survivor, then returning home
when the switch recovers.

Run:  python examples/fault_tolerant_monitoring.py
"""

from repro.core import FarmDeployment, FaultToleranceManager, fail_switch, recover_switch
from repro.core.task import TaskDefinition
from repro.net.topology import spine_leaf

SOURCE = """
machine FlowLedger {
  place any;
  poll pollStats = Poll { .ival = 0.05, .what = port ANY };
  float totalBytes = 0.0;
  long polls = 0;
  state accounting {
    util (res) { if (res.vCPU >= 0.1) then { return 10; } }
    when (pollStats as stats) do {
      polls = polls + 1;
      int i = 0;
      while (i < size(stats)) {
        totalBytes = totalBytes + get(stats, i).rate_bps * 0.05;
        i = i + 1;
      }
    }
  }
}
"""


def ledger_state(farm, seed):
    instance = farm.seeder.soils[seed.switch].deployments[
        seed.seed_id].instance
    return instance.machine_scope.vars["polls"]


def main() -> None:
    farm = FarmDeployment(topology=spine_leaf(1, 2, 1))
    task = TaskDefinition.single_machine(
        task_id="ledger", source=SOURCE, machine_name="FlowLedger")
    farm.submit(task)
    farm.settle()
    manager = FaultToleranceManager(farm.seeder,
                                    heartbeat_interval_s=0.2,
                                    miss_limit=2,
                                    checkpoint_interval_s=0.25)
    seed = farm.seeder.tasks["ledger"].seeds[0]
    home = seed.switch
    farm.run(until=farm.sim.now + 2.0)
    print(f"[t=2.0s] ledger on switch {home}: "
          f"{ledger_state(farm, seed)} polls accumulated")

    print(f"[t=2.0s] switch {home} crashes (power loss)")
    fail_switch(farm.seeder, home)
    farm.run(until=farm.sim.now + 2.0)
    print(f"[t=4.0s] failure detected: failed={manager.failed_switch_ids()}"
          f", failovers={manager.failovers_performed}")
    print(f"         ledger resumed on switch {seed.switch} from its "
          f"checkpoint: {ledger_state(farm, seed)} polls retained")

    print(f"[t=4.0s] switch {home} comes back")
    recover_switch(farm.seeder, home)
    farm.run(until=farm.sim.now + 2.0)
    print(f"[t=6.0s] fleet healthy again: alive={manager.alive_switches()}"
          f", ledger now at {ledger_state(farm, seed)} polls on switch "
          f"{seed.switch}")


if __name__ == "__main__":
    main()
