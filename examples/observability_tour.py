#!/usr/bin/env python3
"""Observability tour: watch a monitoring task run, then open the replay.

One heavy-hitter detection task runs for two simulated seconds on a
small spine-leaf fabric while the control plane drops 5% of messages.
The deployment is created with ``trace=True``, so every lifecycle step
(compile -> place -> deploy -> poll -> fire -> harvest) and every
control-bus message lands in the causal tracer, and every component
counts into the shared metrics registry.

The script then exports both views:

* ``farm_trace.json``  — Chrome ``trace_event`` timeline keyed on
  *sim-time*.  Load it at https://ui.perfetto.dev (or chrome://tracing)
  to scrub through the run switch by switch.
* ``farm_metrics.prom`` — Prometheus exposition dump of every counter,
  gauge, and histogram.

See docs/observability.md for the metric catalog and tracing model.

Run:  python examples/observability_tour.py
"""

from repro.core import FarmDeployment
from repro.net.topology import spine_leaf
from repro.obs import write_chrome_trace, write_prometheus
from repro.tasks.heavy_hitter import make_task as make_hh_task

TRACE_PATH = "farm_trace.json"
METRICS_PATH = "farm_metrics.prom"


def main() -> None:
    farm = FarmDeployment(topology=spine_leaf(1, 2, 2), trace=True)
    farm.enable_chaos(seed=3).lossy(0.05)
    farm.submit(make_hh_task(threshold=10e6, accuracy_ms=10))
    farm.run(until=2.0)

    metrics = farm.metrics
    print("[t=2s] heavy-hitter task ran under 5% control-message loss")
    print(f"  bus:      {int(metrics.value('farm_bus_messages_total'))} "
          f"messages, {int(metrics.value('farm_bus_bytes_total'))} bytes "
          f"({int(metrics.value('farm_bus_chaos_dropped_total'))} dropped "
          f"by chaos)")
    print(f"  soils:    {int(metrics.sum_values('farm_soil_polls_total'))} "
          f"polls, {int(metrics.sum_values('farm_soil_events_total'))} "
          f"seed events across "
          f"{int(metrics.sum_values('farm_soil_seeds'))} deployed seeds")
    print(f"  retries:  "
          f"{int(metrics.sum_values('farm_reliable_retransmissions_total'))} "
          f"retransmissions absorbed the loss")
    print(f"  cpu:      "
          f"{metrics.sum_values('farm_cpu_work_seconds_total'):.4f} "
          f"management-CPU seconds charged fleet-wide")

    tracer = farm.tracer
    tracks = tracer.by_track()
    print(f"[trace] {len(tracer)} events on {len(tracks)} tracks "
          f"({tracer.dropped} dropped): "
          + ", ".join(sorted(tracks)))

    write_chrome_trace(tracer, TRACE_PATH, registry=metrics)
    write_prometheus(metrics, METRICS_PATH)
    print(f"[export] {TRACE_PATH} — open at https://ui.perfetto.dev")
    print(f"[export] {METRICS_PATH} — Prometheus text format")


if __name__ == "__main__":
    main()
