#!/usr/bin/env python3
"""Remediation tour: the same gray failure with and without the loop.

A fleet of movable probe seeds runs on a small spine-leaf fabric.  Then
one switch goes *gray*: 75% of its outbound control plane — heartbeats,
telemetry — silently disappears, without the hard partition the built-in
two-stage failure detector needs to confirm a death.  Detection alone
watches the ``heartbeat-degraded`` alert fire while monitoring coverage
rots.

The closed loop turns the alert into action.  The scenario runs three
ways on the identical scripted fault:

* **off**    — detection only: the alert fires, nothing acts,
* **dry**    — the remediation engine decides (policies + guardrails)
  but executes nothing; the simulation must match "off" exactly,
* **active** — ``DrainPolicy`` cordons the gray switch and re-places its
  seeds on healthy peers the moment the alert fires, then restores it
  once the alert resolves; ``EscalatePolicy`` stands by to force a
  failover if the alert keeps re-firing.

Every decision — executed, dry-run, or refused by a guardrail
(cooldown, flap suppression, concurrency budget, blast radius) — lands
in the RemediationLog with its alert -> decision -> action -> outcome
chain, and on the tracer's ``remediation`` track.  The active run is
rendered as ``remediation.html`` with the decision timeline inlined.

See docs/remediation.md for the policy model and guardrail semantics.

Run:  python examples/remediation_tour.py
"""

from repro.eval.experiments import run_remediation_loop

DASHBOARD_PATH = "remediation.html"


def main() -> None:
    cmp = run_remediation_loop(dashboard_path=DASHBOARD_PATH)

    print("[scenario] gray failure on the busiest switch: 75% outbound "
          "loss from 10s to 50s")
    print("[alerts (active run)]")
    for t, rule, state in cmp.active.alert_log:
        print(f"  {t:6.1f}s  {rule:<20} {state}")
    print("[decisions (active run)]")
    for rec in cmp.active.records:
        verdict = (f"{rec.decision} ({rec.blocked_by})" if rec.blocked_by
                   else rec.decision)
        outcome = f" -> {rec.outcome}" if rec.outcome else ""
        print(f"  {rec.t:6.1f}s  {rec.action:<8} sw{rec.switch}  "
              f"{verdict}{outcome}")
    print("[retained MU]")
    for point in (cmp.off, cmp.dry, cmp.active):
        print(f"  {point.mode:<7} {point.mu_retained:7.1%}")
    print(f"[verdict] closing the loop recovered "
          f"{cmp.mu_gain * 100:.1f} pts of monitoring utility; "
          f"dry-run decided identically ({cmp.dry_matches_active}) "
          f"and changed nothing ({cmp.dry_changed_nothing})")
    print(f"[export] {DASHBOARD_PATH} — self-contained, open from file://")


if __name__ == "__main__":
    main()
