#!/usr/bin/env python3
"""Writing your own M&M task in Almanac, end to end.

This example builds a *QoS guard* that is not in the paper's task table:
it watches a tenant prefix's bandwidth, and when the tenant exceeds its
contract the seed locally tags the traffic down to a scavenger QoS class;
dropping back under the contract restores it.  Three states, a placement
constraint, a harvester, and a dynamically adjustable contract — most of
Almanac's surface in ~60 lines of DSL.

Run:  python examples/custom_almanac_task.py
"""

from repro.core.deployment import FarmDeployment
from repro.core.harvester import Harvester
from repro.core.task import TaskDefinition
from repro.net.addresses import parse_ip
from repro.net.packet import PROTO_TCP, Flow, FlowKey
from repro.net.topology import spine_leaf

QOS_GUARD = """
machine QosGuard {
  // Pin the guard to the tenant's access switches only
  // (switches 2 and 5 are the two leaves of this topology).
  place all 2, 5;
  poll pollStats = Poll { .ival = 20 / res().PCIe, .what = port ANY };
  external long contractBps;
  external string tenantPrefix;
  float lastRate = 0.0;

  state compliant {
    util (res) {
      if (res.vCPU >= 0.25 and res.RAM >= 32) then {
        return min(res.vCPU * 10, res.PCIe / 100);
      }
    }
    when (pollStats as stats) do {
      lastRate = tenantRate(stats);
      if (lastRate > contractBps) then {
        transit violating;
      }
    }
  }

  state violating {
    util (res) { return 60; }
    when (enter) do {
      // Local reaction: demote the tenant to the scavenger class.
      addTCAMRule(makeRule(srcIP tenantPrefix, makeQosAction("scavenger")));
      send lastRate to harvester;
    }
    when (pollStats as stats) do {
      lastRate = tenantRate(stats);
      if (lastRate <= contractBps) then {
        removeTCAMRule(srcIP tenantPrefix);
        send "restored" to harvester;
        transit compliant;
      }
    }
  }

  when (recv long newContract from harvester) do {
    contractBps = newContract;
  }
}

function float tenantRate(list stats) {
  float total = 0.0;
  int i = 0;
  while (i < size(stats)) {
    total = total + get(stats, i).rate_bps;
    i = i + 1;
  }
  return total;
}
"""


class QosHarvester(Harvester):
    def __init__(self):
        super().__init__("qos-harvester")
        self.violations = []
        self.restorations = 0

    def on_seed_report(self, report):
        if report.value == "restored":
            self.restorations += 1
        else:
            self.violations.append((report.time, report.switch,
                                    report.value))

    def renegotiate(self, contract_bps):
        return self.send_to_seeds("QosGuard", int(contract_bps))


def main() -> None:
    farm = FarmDeployment(topology=spine_leaf(1, 2, 2))
    harvester = QosHarvester()
    task = TaskDefinition.single_machine(
        task_id="qos-guard", source=QOS_GUARD, machine_name="QosGuard",
        externals={"contractBps": 5_000_000,
                   "tenantPrefix": "10.1.1.0/24"},
        harvester=harvester)
    farm.submit(task)
    farm.settle()
    locations = [seed.switch
                 for seed in farm.seeder.tasks["qos-guard"].seeds]
    print(f"QosGuard seeds placed on switches {sorted(locations)} "
          f"(pinned by the place directive)")

    # The tenant at 10.1.1.0/24 starts within contract, then bursts.
    leaf = 2
    key = FlowKey(parse_ip("10.1.1.10"), parse_ip("10.2.1.1"), 4000, 443,
                  PROTO_TCP)
    flow = Flow(key, rate_bps=2e6, start_time=farm.sim.now)
    farm.fleet.get(leaf).asic.attach_flow(flow, 0, 1)
    t0 = farm.sim.now
    farm.run(until=t0 + 0.2)
    print(f"[t=0.2s] within contract, violations: "
          f"{len(harvester.violations)}")

    flow.set_rate(20e6, at_time=farm.sim.now)  # burst: 4x the contract
    farm.run(until=farm.sim.now + 0.2)
    print(f"[t=0.4s] burst detected: {len(harvester.violations)} "
          f"violation(s), QoS rule installed: "
          f"{farm.fleet.get(leaf).tcam.used('monitoring')} rule(s)")

    flow.set_rate(1e6, at_time=farm.sim.now)  # tenant calms down
    farm.run(until=farm.sim.now + 0.2)
    print(f"[t=0.6s] restored: {harvester.restorations}, rules left: "
          f"{farm.fleet.get(leaf).tcam.used('monitoring')}")

    # Renegotiate the contract at runtime, fleet-wide, one call.
    harvester.renegotiate(50_000_000)
    flow.set_rate(20e6, at_time=farm.sim.now)
    farm.run(until=farm.sim.now + 0.2)
    print(f"[t=0.8s] after renegotiation the same burst is compliant: "
          f"violations still {len(harvester.violations)}")


if __name__ == "__main__":
    main()
