#!/usr/bin/env python3
"""DDoS detection and *local* mitigation — management beyond monitoring.

The DDoS seed watches probed packets per victim; when a victim's traffic
crosses the thresholds, the seed (a) transitions into its ``mitigating``
state, (b) installs a rate-limit TCAM rule locally — no controller round
trip — and (c) informs the harvester, which later lifts the mitigation.

Run:  python examples/ddos_mitigation.py
"""

from repro.core.deployment import FarmDeployment
from repro.net.addresses import parse_ip
from repro.net.topology import spine_leaf
from repro.net.traffic import DDoSWorkload, UniformWorkload
from repro.tasks import make_ddos_task


def victim_inbound_rate(farm, leaf, victim_ip):
    """Effective rate toward the victim, TCAM actions applied (the attack
    converges on egress port 0 in this scenario)."""
    switch = farm.fleet.get(leaf)
    return switch.asic.read_port_stats(0).rate_bps / 1e6


def main() -> None:
    farm = FarmDeployment(topology=spine_leaf(1, 2, 2))
    task = make_ddos_task(rate_threshold=20_000, source_threshold=10,
                          interval_s=0.01)
    farm.submit(task)
    farm.settle()
    leaf = farm.topology.leaf_ids[0]

    # Background traffic, then a 60-source volumetric attack at t+0.5s.
    farm.start_workload(UniformWorkload(num_ports=10, rate_bps=2e5), leaf)
    attack = DDoSWorkload(num_sources=60, victim_ip="10.200.0.1",
                          per_source_rate_bps=2e6, start_delay=0.5)
    farm.start_workload(attack, leaf)

    t0 = farm.sim.now
    farm.run(until=t0 + 0.4)
    print(f"[t={farm.sim.now - t0:.2f}s] calm: victim sees "
          f"{victim_inbound_rate(farm, leaf, '10.200.0.1'):.1f} MB/s")

    farm.run(until=t0 + 0.7)
    print(f"[t={farm.sim.now - t0:.2f}s] attack raging "
          f"({attack.aggregate_rate_bps / 1e6:.0f} MB/s offered)")

    farm.run(until=t0 + 1.5)
    harvester = task.harvester
    print(f"[t={farm.sim.now - t0:.2f}s] harvester knows victims: "
          f"{sorted(harvester.victims)}")
    switch = farm.fleet.get(leaf)
    rules = switch.tcam.rules("monitoring")
    print(f"  switch-local mitigation: {len(rules)} TCAM rule(s), "
          f"victim now receives "
          f"{victim_inbound_rate(farm, leaf, '10.200.0.1'):.2f} MB/s")

    # Attack ends; the harvester lifts the mitigation network-wide.
    for flow in attack.flows:
        flow.stop(at_time=farm.sim.now)
    harvester.lift_mitigation("10.200.0.1")
    farm.run(until=farm.sim.now + 0.2)
    print(f"[t={farm.sim.now - t0:.2f}s] mitigation lifted; TCAM rules "
          f"remaining: {switch.tcam.used('monitoring')}")


if __name__ == "__main__":
    main()
