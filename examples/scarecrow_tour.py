#!/usr/bin/env python3
"""Scarecrow tour: a chaos incident, watched end-to-end by the pipeline.

A heavy-hitter task runs on a small spine-leaf fabric.  Ten seconds in,
chaos partitions one monitored switch for thirty seconds; the seeder's
failover parks the seeds pinned there, then recovers them when the
partition heals.  The whole incident is observed by Scarecrow, the
embedded telemetry pipeline:

* a **Scraper** samples every metric into the sim-time TSDB once per
  simulated second (raw points downsample 10x / 100x as they age, with
  min/max envelopes so spikes survive),
* two **alert rules** watch the scraped series — an EWMA anomaly rule
  on the chaos drop rate, and a threshold rule on parked seeds — and
  walk the pending -> firing -> resolved lifecycle as the incident
  unfolds,
* the run then renders as ``dashboard.html``: one self-contained file
  (inline SVG + CSS, zero external assets) you can open straight from
  ``file://`` or attach to a CI run.

See docs/observability.md ("Scarecrow") for the retention model, the
query cheatsheet, and the alert-rule schema.

Run:  python examples/scarecrow_tour.py
"""

from repro.eval.experiments import run_scarecrow_chaos

DASHBOARD_PATH = "dashboard.html"


def main() -> None:
    point = run_scarecrow_chaos(dashboard_path=DASHBOARD_PATH)

    print(f"[t={point.duration_s:.0f}s] partition from "
          f"{point.loss_start_s:.0f}s to {point.loss_end_s:.0f}s, "
          f"{point.scrapes} scrapes at 1 s cadence")
    print("[alerts]")
    for t, rule, state in point.alert_log:
        print(f"  {t:6.1f}s  {rule:<18} {state}")
    delay = ("never" if point.firing_delay_s is None
             else f"{point.firing_delay_s:.1f}s after loss onset")
    print(f"[verdict] mu-degradation fired {delay}; "
          f"peak parked seeds {point.parked_peak:.0f}; "
          f"resolved after recovery: {point.resolved}")
    print(f"[export] {DASHBOARD_PATH} — self-contained, open from file://")


if __name__ == "__main__":
    main()
